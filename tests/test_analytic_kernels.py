"""Vectorized analytic solver kernels vs the scalar references (PR 5).

The contract under test is *exact* equality: the NumPy kernels of
``repro.core.dp_kernels`` must return the same expected times (bit for bit)
and the same checkpoint placements (same first-lowest-index tie-breaking) as
the retained ``method="reference"`` loops, on every instance -- including
tie-heavy chains of identical tasks and overflow-prone regimes.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.strategies import evaluate_chain_strategies
from repro.core.chain_dp import (
    optimal_chain_checkpoints,
    optimal_chain_checkpoints_budget,
)
from repro.core.dag_scheduling import (
    LINEARIZATION_STRATEGIES,
    exhaustive_dag_schedule,
    linearize,
    place_checkpoints_on_order,
    schedule_dag,
)
from repro.core.dp_kernels import AUTO_MIN_TASKS, resolve_dp_method
from repro.core.independent import (
    MAX_PARTITION_ITEMS,
    exhaustive_independent_schedule,
    grouping_expected_time,
    schedule_independent_tasks,
)
from repro.experiments.registry import run_experiment
from repro.models.checkpoint import FrontierCheckpointCost
from repro.workflows.chain import LinearChain
from repro.workflows.generators import (
    fork_join,
    montage_like,
    uniform_random_chain,
)


@st.composite
def chains(draw, max_n=40):
    """Random chains spanning both sides of the auto-dispatch threshold."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    works = draw(
        st.lists(st.floats(min_value=0.5, max_value=20.0), min_size=n, max_size=n)
    )
    ckpts = draw(
        st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=n, max_size=n)
    )
    recs = draw(
        st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=n, max_size=n)
    )
    initial = draw(st.floats(min_value=0.0, max_value=3.0))
    return LinearChain(
        works=works, checkpoint_costs=ckpts, recovery_costs=recs, initial_recovery=initial
    )


rates = st.floats(min_value=1e-4, max_value=0.3)
downtimes = st.floats(min_value=0.0, max_value=3.0)


def assert_same_placement(a, b):
    assert a.expected_makespan == b.expected_makespan
    assert a.checkpoint_after == b.checkpoint_after


class TestChainDPKernelExactness:
    @given(chain=chains(), rate=rates, downtime=downtimes, final=st.booleans())
    @settings(max_examples=120, deadline=None)
    def test_vectorized_equals_reference(self, chain, rate, downtime, final):
        ref = optimal_chain_checkpoints(
            chain, downtime, rate, final_checkpoint=final, method="reference"
        )
        vec = optimal_chain_checkpoints(
            chain, downtime, rate, final_checkpoint=final, method="vectorized"
        )
        auto = optimal_chain_checkpoints(
            chain, downtime, rate, final_checkpoint=final, method="auto"
        )
        assert_same_placement(ref, vec)
        assert_same_placement(ref, auto)

    @given(
        chain=chains(),
        rate=rates,
        downtime=downtimes,
        final=st.booleans(),
        budget=st.integers(min_value=1, max_value=45),
    )
    @settings(max_examples=120, deadline=None)
    def test_budget_vectorized_equals_reference(
        self, chain, rate, downtime, final, budget
    ):
        ref = optimal_chain_checkpoints_budget(
            chain, downtime, rate, budget, final_checkpoint=final, method="reference"
        )
        vec = optimal_chain_checkpoints_budget(
            chain, downtime, rate, budget, final_checkpoint=final, method="vectorized"
        )
        assert_same_placement(ref, vec)

    @pytest.mark.parametrize("n", [2, 6, AUTO_MIN_TASKS, 30])
    @pytest.mark.parametrize("rate", [1e-3, 0.05, 0.2])
    def test_tie_heavy_identical_tasks_break_ties_identically(self, n, rate):
        # Chains of identical tasks create exact value ties between different
        # segment ends; both paths must keep the first (lowest-index) choice.
        chain = LinearChain.uniform(n, work=2.0, checkpoint_cost=0.5)
        for final in (True, False):
            ref = optimal_chain_checkpoints(
                chain, 0.5, rate, final_checkpoint=final, method="reference"
            )
            vec = optimal_chain_checkpoints(
                chain, 0.5, rate, final_checkpoint=final, method="vectorized"
            )
            assert_same_placement(ref, vec)
        for budget in (1, max(1, n // 2), n):
            ref = optimal_chain_checkpoints_budget(
                chain, 0.5, rate, budget, method="reference"
            )
            vec = optimal_chain_checkpoints_budget(
                chain, 0.5, rate, budget, method="vectorized"
            )
            assert_same_placement(ref, vec)

    def test_overflow_prone_segments_map_to_inf_identically(self):
        # Long uncheckpointed tails overflow the Prop. 1 expectation; both
        # paths must treat those transitions as +inf, not crash or diverge.
        chain = LinearChain.uniform(40, work=60.0, checkpoint_cost=1.0)
        ref = optimal_chain_checkpoints(chain, 1.0, 0.4, method="reference")
        vec = optimal_chain_checkpoints(chain, 1.0, 0.4, method="vectorized")
        assert_same_placement(ref, vec)

    def test_fully_overflowing_instance_raises_on_both_paths(self):
        chain = LinearChain.uniform(3, work=1000.0, checkpoint_cost=1.0)
        for method in ("reference", "vectorized"):
            with pytest.raises(OverflowError):
                optimal_chain_checkpoints(chain, 0.0, 1.0, method=method)

    def test_unknown_method_rejected(self):
        chain = LinearChain.uniform(4)
        with pytest.raises(ValueError, match="unknown method"):
            optimal_chain_checkpoints(chain, 0.5, 0.01, method="numba")
        with pytest.raises(ValueError, match="unknown method"):
            optimal_chain_checkpoints_budget(chain, 0.5, 0.01, 2, method="numba")
        with pytest.raises(ValueError, match="unknown method"):
            schedule_independent_tasks([1.0, 2.0], 0.5, 0.5, 0.0, 0.01, method="numba")

    def test_resolve_dp_method_auto_threshold(self):
        assert resolve_dp_method("auto", AUTO_MIN_TASKS - 1) == "reference"
        assert resolve_dp_method("auto", AUTO_MIN_TASKS) == "vectorized"
        assert resolve_dp_method("reference", 10_000) == "reference"
        assert resolve_dp_method("vectorized", 1) == "vectorized"


@st.composite
def dag_cases(draw):
    """A workflow, a linearisation and a cost model for the placement DP."""
    kind = draw(st.sampled_from(["fork_join", "montage", "chain"]))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    if kind == "fork_join":
        workflow = fork_join(
            draw(st.integers(min_value=2, max_value=8)),
            branch_work=draw(st.floats(min_value=1.0, max_value=8.0)),
            checkpoint_cost=draw(st.floats(min_value=0.1, max_value=2.0)),
            seed=seed,
        )
    elif kind == "montage":
        workflow = montage_like(
            draw(st.integers(min_value=2, max_value=5)),
            checkpoint_cost=draw(st.floats(min_value=0.1, max_value=2.0)),
        )
    else:
        workflow = uniform_random_chain(
            draw(st.integers(min_value=1, max_value=30)), seed=seed
        ).to_workflow()
    strategy = draw(st.sampled_from(sorted(LINEARIZATION_STRATEGIES)))
    rng = np.random.default_rng(seed)
    order = linearize(workflow, strategy, rng=rng)
    frontier = draw(st.booleans())
    model = FrontierCheckpointCost(workflow) if frontier else None
    return workflow, order, model


class TestDagPlacementKernelExactness:
    @given(
        case=dag_cases(),
        rate=rates,
        downtime=downtimes,
        final=st.booleans(),
        initial_recovery=st.floats(min_value=0.0, max_value=3.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_vectorized_equals_reference_on_any_order(
        self, case, rate, downtime, final, initial_recovery
    ):
        workflow, order, model = case
        ref = place_checkpoints_on_order(
            workflow, order, downtime, rate,
            initial_recovery=initial_recovery, checkpoint_model=model,
            final_checkpoint=final, method="reference",
        )
        vec = place_checkpoints_on_order(
            workflow, order, downtime, rate,
            initial_recovery=initial_recovery, checkpoint_model=model,
            final_checkpoint=final, method="vectorized",
        )
        assert ref == vec

    @pytest.mark.parametrize("model_kind", ["per_task", "frontier"])
    def test_schedule_dag_identical_across_methods(self, model_kind):
        workflow = fork_join(6, branch_work=4.0, checkpoint_cost=0.5, seed=2)
        model = FrontierCheckpointCost(workflow) if model_kind == "frontier" else None
        ref = schedule_dag(
            workflow, 0.2, 0.05, checkpoint_model=model, seed=9, method="reference"
        )
        vec = schedule_dag(
            workflow, 0.2, 0.05, checkpoint_model=model, seed=9, method="vectorized"
        )
        assert ref.order == vec.order
        assert ref.checkpoint_after == vec.checkpoint_after
        assert ref.expected_makespan == vec.expected_makespan
        assert ref.strategy == vec.strategy

    def test_exhaustive_dag_schedule_identical_across_methods(self):
        workflow = montage_like(3, checkpoint_cost=0.4)
        ref = exhaustive_dag_schedule(workflow, 0.2, 0.05, method="reference")
        vec = exhaustive_dag_schedule(workflow, 0.2, 0.05, method="vectorized")
        assert ref.order == vec.order
        assert ref.checkpoint_after == vec.checkpoint_after
        assert ref.expected_makespan == vec.expected_makespan


class TestIndependentFastLocalSearch:
    # The batched local search explores the same first-improvement
    # neighbourhood in the same order, but candidate improvements below one
    # ulp may be classified differently than the reference's full
    # re-evaluation, so the two can settle in different equal-quality local
    # optima; the contract is value agreement, not identical partitions.

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_fast_matches_reference_quality(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(24, 50))
        works = list(rng.uniform(1.0, 10.0, size=n))
        ref = schedule_independent_tasks(
            works, 1.0, 1.0, 0.0, 0.05, method="reference"
        )
        fast = schedule_independent_tasks(
            works, 1.0, 1.0, 0.0, 0.05, method="vectorized"
        )
        assert fast.expected_makespan == pytest.approx(
            ref.expected_makespan, rel=1e-9
        )
        # The fast result is a valid partition whose recomputed value matches.
        recomputed = grouping_expected_time(
            fast.groups, works, 1.0, 1.0, 0.0, 0.05
        )
        assert recomputed == fast.expected_makespan

    def test_fast_dominates_trivial_groupings_with_initial_recovery(self):
        rng = np.random.default_rng(11)
        works = list(rng.uniform(1.0, 8.0, size=30))
        fast = schedule_independent_tasks(
            works, 0.8, 1.2, 0.5, 0.04, initial_recovery=2.5, method="vectorized"
        )
        one_group = grouping_expected_time(
            [list(range(30))], works, 0.8, 1.2, 0.5, 0.04, initial_recovery=2.5
        )
        singletons = grouping_expected_time(
            [[i] for i in range(30)], works, 0.8, 1.2, 0.5, 0.04, initial_recovery=2.5
        )
        assert fast.expected_makespan <= one_group + 1e-9
        assert fast.expected_makespan <= singletons + 1e-9

    def test_small_instances_use_reference_and_match_exhaustive(self):
        rng = np.random.default_rng(5)
        works = list(rng.uniform(1.0, 10.0, size=7))
        heuristic = schedule_independent_tasks(works, 1.0, 1.0, 0.0, 0.05)
        exact = exhaustive_independent_schedule(works, 1.0, 1.0, 0.0, 0.05)
        assert heuristic.expected_makespan <= exact.expected_makespan * (1 + 1e-2)


class TestSetPartitionCap:
    def test_cap_raises_clear_error(self):
        works = [1.0] * (MAX_PARTITION_ITEMS + 1)
        with pytest.raises(ValueError) as excinfo:
            exhaustive_independent_schedule(
                works, 1.0, 1.0, 0.0, 0.05, max_tasks=MAX_PARTITION_ITEMS + 5
            )
        message = str(excinfo.value)
        assert str(MAX_PARTITION_ITEMS) in message
        assert "schedule_independent_tasks" in message

    def test_cap_boundary_is_enumerable(self):
        from repro.core.independent import _set_partitions

        # Exactly at the cap the generator must still be constructible (we
        # only pull one partition; full enumeration at 13 items is minutes).
        first = next(iter(_set_partitions(list(range(MAX_PARTITION_ITEMS)))))
        assert sum(len(block) for block in first) == MAX_PARTITION_ITEMS


class TestExperimentRegressions:
    """E3/E6 default outputs equal the retained scalar reference (seed algorithm)."""

    def test_e3_outputs_unchanged_by_vectorization(self):
        default = run_experiment(
            "E3", brute_force_sizes=(4, 6), scaling_sizes=(30, 60), seed=1
        )
        reference = run_experiment(
            "E3", brute_force_sizes=(4, 6), scaling_sizes=(30, 60), seed=1,
            method="reference",
        )
        for row_default, row_reference in zip(default.rows, reference.rows):
            assert row_default["E_dp"] == row_reference["E_dp"]
            assert row_default["num_checkpoints"] == row_reference["num_checkpoints"]
            assert row_default["match"] == row_reference["match"]

    def test_e6_outputs_unchanged_by_vectorization(self):
        n, seed, downtime = 40, 3, 0.5
        table = run_experiment("E6", n=n, seed=seed, downtime=downtime)
        # Rebuild E6's chain and recompute each row's optimum and ratios with
        # the scalar reference solver.
        rng = np.random.default_rng(seed)
        chain = uniform_random_chain(
            n, work_range=(1.0, 10.0), checkpoint_range=(0.5, 2.0), rng=rng
        )
        for row in table.rows:
            results = evaluate_chain_strategies(
                chain, downtime, row["rate"], method="reference"
            )
            optimal = results["optimal_dp"]
            assert row["E_optimal"] == optimal.expected_makespan
            assert row["optimal_checkpoints"] == optimal.num_checkpoints
            assert row["ratio_all"] == (
                results["checkpoint_all"].expected_makespan / optimal.expected_makespan
            )
            assert row["ratio_every_5"] == (
                results["every_5"].expected_makespan / optimal.expected_makespan
            )


class TestStrategySubsets:
    def test_only_restricts_evaluation(self):
        chain = uniform_random_chain(10, seed=4)
        subset = evaluate_chain_strategies(
            chain, 0.5, 0.02, only=("checkpoint_all", "checkpoint_none")
        )
        assert sorted(subset) == ["checkpoint_all", "checkpoint_none"]
        full = evaluate_chain_strategies(chain, 0.5, 0.02)
        for name, result in subset.items():
            assert result.expected_makespan == full[name].expected_makespan
            assert result.checkpoint_after == full[name].checkpoint_after

    def test_only_unknown_name_raises_with_catalog(self):
        chain = uniform_random_chain(5, seed=4)
        with pytest.raises(KeyError, match="optimal_dp"):
            evaluate_chain_strategies(chain, 0.5, 0.02, only=("no_such_strategy",))

    def test_method_reference_matches_default(self):
        chain = uniform_random_chain(30, seed=6)
        default = evaluate_chain_strategies(chain, 0.5, 0.02)
        reference = evaluate_chain_strategies(chain, 0.5, 0.02, method="reference")
        assert (
            default["optimal_dp"].expected_makespan
            == reference["optimal_dp"].expected_makespan
        )
        assert (
            default["optimal_dp"].checkpoint_after
            == reference["optimal_dp"].checkpoint_after
        )


class TestExpectedTimeUfuncConsistency:
    def test_scalar_formula_matches_array_ufuncs(self):
        # The exactness contract rests on expected_completion_time sharing
        # NumPy's exp/expm1: spot-check the scalar result against an explicit
        # array-side evaluation of the same expression.
        from repro.core.expected_time import expected_completion_time

        rng = np.random.default_rng(8)
        works = rng.uniform(0.1, 200.0, size=200)
        rate, downtime, recovery, ckpt = 0.03, 0.7, 4.0, 1.5
        factor = float(np.exp(rate * recovery)) * (1.0 / rate + downtime)
        array_side = factor * np.expm1(rate * (works + ckpt))
        for work, expected in zip(works, array_side):
            assert (
                expected_completion_time(float(work), ckpt, downtime, recovery, rate)
                == expected
            )

    def test_makespan_value_is_finite_and_stable(self):
        # Golden pin (captured at PR 5): guards against accidental numerics
        # drift in either path.  Kept at rel 1e-12 so a legitimate 1-ulp
        # library shift does not make it brittle.
        chain = uniform_random_chain(50, seed=2)
        result = optimal_chain_checkpoints(chain, 0.5, 0.02)
        assert math.isfinite(result.expected_makespan)
        assert result.expected_makespan == pytest.approx(
            optimal_chain_checkpoints(chain, 0.5, 0.02, method="reference").expected_makespan,
            rel=1e-12,
        )
