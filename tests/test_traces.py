"""Tests for synthetic failure traces."""

import math

import pytest

from repro.failures.distributions import (
    ExponentialFailure,
    LogNormalFailure,
    WeibullFailure,
)
from repro.failures.traces import (
    FailureEvent,
    FailureTrace,
    generate_trace,
    merge_traces,
)


class TestFailureEvent:
    def test_ordering_by_time(self):
        assert FailureEvent(1.0) < FailureEvent(2.0)

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            FailureEvent(-1.0)

    def test_rejects_nan_time(self):
        with pytest.raises(ValueError):
            FailureEvent(math.nan)


class TestFailureTrace:
    def _trace(self):
        events = (FailureEvent(5.0, 0), FailureEvent(2.0, 1), FailureEvent(9.0, 0))
        return FailureTrace(events=events, horizon=10.0, num_processors=2)

    def test_events_sorted_on_construction(self):
        trace = self._trace()
        assert trace.times == [2.0, 5.0, 9.0]

    def test_len_and_iter(self):
        trace = self._trace()
        assert len(trace) == 3
        assert [e.time for e in trace] == [2.0, 5.0, 9.0]

    def test_inter_arrival_times(self):
        trace = self._trace()
        assert trace.inter_arrival_times() == [2.0, 3.0, 4.0]

    def test_inter_arrival_empty_trace(self):
        trace = FailureTrace(events=(), horizon=10.0)
        assert trace.inter_arrival_times() == []

    def test_failures_in_window(self):
        trace = self._trace()
        assert [e.time for e in trace.failures_in(2.0, 9.0)] == [2.0, 5.0]

    def test_failures_in_rejects_bad_window(self):
        with pytest.raises(ValueError):
            self._trace().failures_in(5.0, 1.0)

    def test_next_failure_after(self):
        trace = self._trace()
        assert trace.next_failure_after(4.0).time == 5.0
        assert trace.next_failure_after(9.5) is None

    def test_event_beyond_horizon_rejected(self):
        with pytest.raises(ValueError, match="horizon"):
            FailureTrace(events=(FailureEvent(20.0),), horizon=10.0)

    def test_shifted(self):
        trace = self._trace().shifted(1.0)
        assert trace.times == [3.0, 6.0, 10.0]

    def test_shifted_rejects_negative_result(self):
        with pytest.raises(ValueError):
            self._trace().shifted(-5.0)


class TestGenerateTrace:
    def test_respects_horizon(self, rng):
        law = ExponentialFailure(rate=0.1)
        trace = generate_trace(law, horizon=100.0, rng=rng)
        assert all(0 < t < 100.0 for t in trace.times)

    def test_event_count_scales_with_processors(self, rng):
        law = ExponentialFailure(rate=0.01)
        single = generate_trace(law, horizon=5000.0, num_processors=1, rng=rng)
        multi = generate_trace(law, horizon=5000.0, num_processors=8, rng=rng)
        assert len(multi) > 4 * len(single)

    def test_seed_reproducibility(self):
        law = WeibullFailure(shape=0.7, scale=50.0)
        a = generate_trace(law, horizon=1000.0, seed=7)
        b = generate_trace(law, horizon=1000.0, seed=7)
        assert a.times == b.times

    def test_processor_indices_assigned(self, rng):
        law = ExponentialFailure(rate=0.05)
        trace = generate_trace(law, horizon=500.0, num_processors=3, rng=rng)
        assert set(e.processor for e in trace) <= {0, 1, 2}


class TestTraceStatistics:
    def test_empty_trace(self):
        stats = FailureTrace(events=(), horizon=10.0).statistics()
        assert stats.count == 0
        assert stats.mtbf == math.inf

    def test_exponential_cv_close_to_one(self, rng):
        law = ExponentialFailure(rate=0.02)
        trace = generate_trace(law, horizon=200_000.0, rng=rng)
        stats = trace.statistics()
        assert stats.mtbf == pytest.approx(50.0, rel=0.1)
        assert stats.cv == pytest.approx(1.0, abs=0.1)

    def test_weibull_low_shape_has_high_cv(self, rng):
        law = WeibullFailure.from_mtbf(50.0, shape=0.6)
        trace = generate_trace(law, horizon=200_000.0, rng=rng)
        assert trace.statistics().cv > 1.2

    def test_fit_exponential_matches_mtbf(self, rng):
        law = ExponentialFailure(rate=0.02)
        trace = generate_trace(law, horizon=100_000.0, rng=rng)
        fitted = trace.statistics().fit_exponential()
        assert 1.0 / fitted.rate == pytest.approx(trace.statistics().mtbf)

    def test_fit_weibull_recovers_shape_roughly(self, rng):
        law = WeibullFailure.from_mtbf(40.0, shape=0.7)
        trace = generate_trace(law, horizon=400_000.0, rng=rng)
        fitted = trace.statistics().fit_weibull()
        assert fitted.shape == pytest.approx(0.7, abs=0.15)
        assert fitted.mean() == pytest.approx(trace.statistics().mtbf, rel=1e-6)

    def test_fit_lognormal_matches_moments(self, rng):
        law = LogNormalFailure.from_mtbf(30.0, sigma=0.8)
        trace = generate_trace(law, horizon=300_000.0, rng=rng)
        stats = trace.statistics()
        fitted = stats.fit_lognormal()
        assert fitted.mean() == pytest.approx(stats.mtbf, rel=1e-6)

    def test_fit_on_empty_trace_raises(self):
        stats = FailureTrace(events=(), horizon=1.0).statistics()
        with pytest.raises(ValueError):
            stats.fit_exponential()
        with pytest.raises(ValueError):
            stats.fit_weibull()
        with pytest.raises(ValueError):
            stats.fit_lognormal()


class TestMergeTraces:
    def test_merge_superposes_events(self, rng):
        law = ExponentialFailure(rate=0.05)
        a = generate_trace(law, horizon=100.0, rng=rng)
        b = generate_trace(law, horizon=100.0, rng=rng)
        merged = merge_traces([a, b])
        assert len(merged) == len(a) + len(b)
        assert merged.num_processors == 2

    def test_merge_uses_min_horizon(self, rng):
        law = ExponentialFailure(rate=0.05)
        a = generate_trace(law, horizon=100.0, rng=rng)
        b = generate_trace(law, horizon=50.0, rng=rng)
        merged = merge_traces([a, b])
        assert merged.horizon == 50.0
        assert all(t < 50.0 for t in merged.times)

    def test_merge_empty_list_raises(self):
        with pytest.raises(ValueError):
            merge_traces([])

    def test_merge_renumbers_processors(self, rng):
        law = ExponentialFailure(rate=0.1)
        a = generate_trace(law, horizon=200.0, num_processors=2, rng=rng)
        b = generate_trace(law, horizon=200.0, num_processors=2, rng=rng)
        merged = merge_traces([a, b])
        processors = {e.processor for e in merged}
        assert processors <= {0, 1, 2, 3}
        assert any(p >= 2 for p in processors)
