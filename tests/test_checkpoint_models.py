"""Tests for the checkpoint cost models (constant, proportional, frontier)."""

import pytest

from repro.models.checkpoint import (
    ConstantCheckpointCost,
    FrontierCheckpointCost,
    ProportionalCheckpointCost,
)
from repro.workflows.dag import Workflow
from repro.workflows.task import Task


class TestProportionalCheckpointCost:
    def test_divides_by_p(self):
        model = ProportionalCheckpointCost(alpha=0.2)
        assert model.checkpoint_time(1000.0, 10) == pytest.approx(20.0)

    def test_recovery_equals_checkpoint(self):
        model = ProportionalCheckpointCost(alpha=0.2)
        assert model.recovery_time(100.0, 4) == model.checkpoint_time(100.0, 4)

    def test_rejects_non_positive_alpha(self):
        with pytest.raises(ValueError):
            ProportionalCheckpointCost(alpha=0.0)

    def test_rejects_negative_footprint(self):
        with pytest.raises(ValueError):
            ProportionalCheckpointCost(alpha=1.0).checkpoint_time(-1.0, 2)


class TestConstantCheckpointCost:
    def test_independent_of_p(self):
        model = ConstantCheckpointCost(alpha=0.5)
        assert model.checkpoint_time(100.0, 1) == model.checkpoint_time(100.0, 1024)

    def test_value(self):
        model = ConstantCheckpointCost(alpha=0.5)
        assert model.checkpoint_time(100.0, 7) == pytest.approx(50.0)

    def test_rejects_zero_processors(self):
        with pytest.raises(TypeError):
            ConstantCheckpointCost(alpha=0.5).checkpoint_time(100.0, 1.5)


def _diamond():
    tasks = [
        Task("A", 2.0, checkpoint_cost=1.0, recovery_cost=1.5),
        Task("B", 3.0, checkpoint_cost=2.0, recovery_cost=2.5),
        Task("C", 5.0, checkpoint_cost=4.0, recovery_cost=4.5),
        Task("D", 1.0, checkpoint_cost=0.5, recovery_cost=0.75),
    ]
    deps = [("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")]
    return Workflow(tasks, deps)


class TestFrontierCheckpointCost:
    def test_chain_degenerates_to_last_task_cost(self):
        tasks = [Task(f"T{i}", 1.0, checkpoint_cost=float(i + 1)) for i in range(4)]
        wf = Workflow.from_chain(tasks)
        model = FrontierCheckpointCost(wf)
        order = wf.chain_order()
        for position in range(4):
            assert model.cost(order, -1, position) == pytest.approx(float(position + 1))

    def test_diamond_sums_live_tasks(self):
        wf = _diamond()
        model = FrontierCheckpointCost(wf)
        order = ["A", "B", "C", "D"]
        # After B (position 1) with no prior checkpoint: A and B are both live.
        assert model.cost(order, -1, 1) == pytest.approx(1.0 + 2.0)
        # After C (position 2): B and C live (A's successors are all done).
        assert model.cost(order, -1, 2) == pytest.approx(2.0 + 4.0)

    def test_window_excludes_tasks_before_last_checkpoint(self):
        wf = _diamond()
        model = FrontierCheckpointCost(wf)
        order = ["A", "B", "C", "D"]
        # Checkpoint already taken after A (position 0): checkpointing after B
        # only needs to save B.
        assert model.cost(order, 0, 1) == pytest.approx(2.0)

    def test_max_combiner(self):
        wf = _diamond()
        model = FrontierCheckpointCost(wf, combine=max)
        order = ["A", "B", "C", "D"]
        assert model.cost(order, -1, 2) == pytest.approx(4.0)

    def test_recovery_sums_frontier_recovery_costs(self):
        wf = _diamond()
        model = FrontierCheckpointCost(wf)
        order = ["A", "B", "C", "D"]
        assert model.recovery(order, 2) == pytest.approx(2.5 + 4.5)

    def test_rejects_position_not_after_checkpoint(self):
        wf = _diamond()
        model = FrontierCheckpointCost(wf)
        with pytest.raises(ValueError):
            model.cost(["A", "B", "C", "D"], 2, 1)

    def test_rejects_invalid_order(self):
        wf = _diamond()
        model = FrontierCheckpointCost(wf)
        with pytest.raises(ValueError):
            model.cost(["B", "A", "C", "D"], -1, 1)

    def test_rejects_out_of_range_checkpoint_index(self):
        wf = _diamond()
        model = FrontierCheckpointCost(wf)
        with pytest.raises(ValueError):
            model.cost(["A", "B", "C", "D"], -2, 1)
        with pytest.raises(ValueError):
            model.recovery(["A", "B", "C", "D"], 7)
