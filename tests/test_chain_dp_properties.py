"""Property-based tests for the chain DP (optimality and structural invariants)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bruteforce import brute_force_chain_checkpoints
from repro.core.chain_dp import dp_makespan_recursive, optimal_chain_checkpoints
from repro.core.schedule import Schedule
from repro.workflows.chain import LinearChain


@st.composite
def small_chains(draw):
    """Random chains of 1..7 tasks with moderate parameters."""
    n = draw(st.integers(min_value=1, max_value=7))
    works = draw(
        st.lists(st.floats(min_value=0.5, max_value=20.0), min_size=n, max_size=n)
    )
    ckpts = draw(
        st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=n, max_size=n)
    )
    recs = draw(
        st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=n, max_size=n)
    )
    initial = draw(st.floats(min_value=0.0, max_value=3.0))
    return LinearChain(
        works=works, checkpoint_costs=ckpts, recovery_costs=recs, initial_recovery=initial
    )


rates = st.floats(min_value=1e-4, max_value=0.3)
downtimes = st.floats(min_value=0.0, max_value=3.0)


class TestChainDPProperties:
    @given(chain=small_chains(), rate=rates, downtime=downtimes)
    @settings(max_examples=60, deadline=None)
    def test_dp_equals_brute_force(self, chain, rate, downtime):
        dp = optimal_chain_checkpoints(chain, downtime, rate)
        brute = brute_force_chain_checkpoints(chain, downtime, rate)
        assert dp.expected_makespan == pytest.approx(brute.expected_makespan, rel=1e-9)

    @given(chain=small_chains(), rate=rates, downtime=downtimes)
    @settings(max_examples=60, deadline=None)
    def test_dp_value_achieved_by_its_own_schedule(self, chain, rate, downtime):
        dp = optimal_chain_checkpoints(chain, downtime, rate)
        schedule = dp.to_schedule()
        assert schedule.expected_makespan(downtime, rate) == pytest.approx(
            dp.expected_makespan, rel=1e-9
        )

    @given(chain=small_chains(), rate=rates, downtime=downtimes)
    @settings(max_examples=60, deadline=None)
    def test_dp_never_worse_than_extreme_placements(self, chain, rate, downtime):
        dp = optimal_chain_checkpoints(chain, downtime, rate)
        everywhere = Schedule.for_chain(chain, range(chain.n)).expected_makespan(downtime, rate)
        only_last = Schedule.for_chain(chain, [chain.n - 1]).expected_makespan(downtime, rate)
        assert dp.expected_makespan <= everywhere + 1e-9
        assert dp.expected_makespan <= only_last + 1e-9

    @given(chain=small_chains(), rate=rates, downtime=downtimes)
    @settings(max_examples=60, deadline=None)
    def test_recursive_transcription_agrees(self, chain, rate, downtime):
        dp = optimal_chain_checkpoints(chain, downtime, rate)
        best, _ = dp_makespan_recursive(chain, downtime, rate)
        assert best == pytest.approx(dp.expected_makespan, rel=1e-9)

    @given(chain=small_chains(), rate=rates, downtime=downtimes)
    @settings(max_examples=60, deadline=None)
    def test_value_exceeds_failure_free_lower_bound(self, chain, rate, downtime):
        dp = optimal_chain_checkpoints(chain, downtime, rate)
        assert dp.expected_makespan >= chain.total_work() - 1e-9

    @given(chain=small_chains(), downtime=downtimes)
    @settings(max_examples=40, deadline=None)
    def test_makespan_monotone_in_failure_rate(self, chain, downtime):
        low = optimal_chain_checkpoints(chain, downtime, 1e-3).expected_makespan
        high = optimal_chain_checkpoints(chain, downtime, 1e-1).expected_makespan
        assert high >= low - 1e-9
