"""Tests for the asyncio serving gateway and its support layers.

The load-bearing guarantees:

* **fidelity** -- a campaign submitted through the gateway returns samples
  bit-identical to a direct run (the gateway is a faster door, not a
  different computation);
* **freshness** -- the in-memory snapshot answering read endpoints reflects
  every job-state transition (push-refreshed, no polling, no stale cache);
* **admission** -- the token-bucket limiter enforces its rolling window
  per client key, reports exact ``Retry-After`` values, and a throttled
  client that backs off as told succeeds;
* **streaming** -- SSE progress events arrive in monotone order and end with
  a terminal event, frames survive being split across TCP segments, and a
  client that disconnects mid-stream is cleaned up server-side.
"""

import json
import os
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.runtime.scenario import ChainSpec, FailureSpec, ScenarioSpec
from repro.service.audit import AuditTrail
from repro.service.client import ServiceClient, ServiceError
from repro.service.gateway import GatewayServer
from repro.service.jobs import JobStore
from repro.service.queue import JobScheduler
from repro.service.ratelimit import TokenBucketLimiter
from repro.service.server import ScenarioServer
from repro.service.snapshot import ServiceSnapshot


def small_spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="gw-test",
        chain=ChainSpec(n=5, seed=2),
        failure=FailureSpec(kind="weibull", mtbf=40.0, shape=0.7),
        strategies=("optimal_dp",),
        num_runs=120,
        downtime=0.2,
        seed=3,
        engine="vectorized",
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# ----------------------------------------------------------------------
# Rate limiter
# ----------------------------------------------------------------------


class TestTokenBucketLimiter:
    def test_burst_then_drain(self):
        clock = FakeClock()
        limiter = TokenBucketLimiter(rate=1.0, burst=3, clock=clock)
        decisions = [limiter.check("k") for _ in range(4)]
        assert [d.allowed for d in decisions] == [True, True, True, False]
        assert [d.remaining for d in decisions[:3]] == [2, 1, 0]

    def test_window_boundary_refill_is_exact(self):
        """A token exists exactly when the rolling window says it should."""
        clock = FakeClock()
        limiter = TokenBucketLimiter(rate=2.0, burst=1, clock=clock)
        assert limiter.check("k").allowed
        # One token every 0.5 s: just before the boundary there is none...
        clock.advance(0.498)
        blocked = limiter.check("k")
        assert not blocked.allowed
        # 0.996 tokens accumulated; the missing 0.004 arrive in 2 ms.
        assert blocked.retry_after == pytest.approx(0.002)
        # ...and exactly at the boundary there is one.
        clock.advance(0.002)
        assert limiter.check("k").allowed

    def test_retry_after_math(self):
        clock = FakeClock()
        limiter = TokenBucketLimiter(rate=0.5, burst=1, clock=clock)
        assert limiter.check("k").allowed
        blocked = limiter.check("k")
        assert blocked.retry_after == pytest.approx(2.0)  # one token per 2 s
        clock.advance(1.0)  # half a token accumulated
        assert limiter.check("k").retry_after == pytest.approx(1.0)

    def test_rejections_do_not_consume(self):
        """Hammering while empty never pushes the client further into debt."""
        clock = FakeClock()
        limiter = TokenBucketLimiter(rate=1.0, burst=1, clock=clock)
        assert limiter.check("k").allowed
        for _ in range(50):
            assert limiter.check("k").retry_after == pytest.approx(1.0)
        clock.advance(1.0)
        assert limiter.check("k").allowed

    def test_per_key_isolation(self):
        clock = FakeClock()
        limiter = TokenBucketLimiter(rate=1.0, burst=1, clock=clock)
        assert limiter.check("alice").allowed
        assert not limiter.check("alice").allowed
        assert limiter.check("bob").allowed  # alice's drain never hits bob

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        limiter = TokenBucketLimiter(rate=10.0, burst=2, clock=clock)
        assert limiter.check("k").allowed
        clock.advance(3600.0)  # an hour idle does not bank an hour of tokens
        results = [limiter.check("k").allowed for _ in range(3)]
        assert results == [True, True, False]

    def test_default_burst_is_one_second(self):
        assert TokenBucketLimiter(rate=7.0).burst == 7
        assert TokenBucketLimiter(rate=0.25).burst == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucketLimiter(rate=0.0)
        with pytest.raises(ValueError, match="burst"):
            TokenBucketLimiter(rate=1.0, burst=0)

    def test_prune_drops_only_full_buckets(self):
        clock = FakeClock()
        limiter = TokenBucketLimiter(rate=1.0, burst=2, clock=clock, max_keys=2)
        limiter.check("a")
        clock.advance(5.0)  # "a" is full again -> prunable
        limiter.check("b")
        limiter.check("c")  # hits max_keys, prunes "a", keeps active "b"
        assert len(limiter) == 2
        # "b" kept its spent-token state through the prune.
        assert limiter.check("b").remaining == 0


# ----------------------------------------------------------------------
# Audit trail
# ----------------------------------------------------------------------


class TestAuditTrail:
    def test_in_memory_records_and_drops_none(self):
        trail = AuditTrail()
        entry = trail.record("job.submit", client="c1", job_id="j1", spec_hash=None)
        assert entry["action"] == "job.submit"
        assert "spec_hash" not in entry
        assert entry["ts"] > 0
        assert trail.entries() == [entry]
        assert trail.path is None

    def test_file_backed_jsonl_appends_across_reopen(self, tmp_path):
        path = tmp_path / "audit" / "trail.jsonl"  # parent dir gets created
        with AuditTrail(path) as trail:
            trail.record("job.submit", job_id="a")
        with AuditTrail(path) as trail:
            trail.record("job.cancel", job_id="a")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["action"] for line in lines] == ["job.submit", "job.cancel"]

    def test_retention_cap(self):
        trail = AuditTrail(keep_in_memory=3)
        for index in range(10):
            trail.record("job.submit", job_id=str(index))
        assert [entry["job_id"] for entry in trail.entries()] == ["7", "8", "9"]
        assert [entry["job_id"] for entry in trail.tail(2)] == ["8", "9"]
        assert len(trail) == 3


# ----------------------------------------------------------------------
# Snapshot
# ----------------------------------------------------------------------


class TestServiceSnapshot:
    def test_prime_and_push_refresh(self):
        with JobStore() as store:
            before = store.submit("campaign", {"n": 0})
            snapshot = ServiceSnapshot(store)
            snapshot.attach()
            assert snapshot.get(before.id)["state"] == "queued"  # primed
            after = store.submit("campaign", {"n": 1})
            assert snapshot.get(after.id)["state"] == "queued"  # pushed
            store.claim_next()
            assert snapshot.get(before.id)["state"] == "running"
            assert snapshot.counts()["running"] == 1
            snapshot.detach()

    def test_job_bytes_cached_until_transition(self):
        with JobStore() as store:
            snapshot = ServiceSnapshot(store)
            snapshot.attach()
            job = store.submit("campaign", {})
            first = snapshot.job_bytes(job.id)
            assert snapshot.job_bytes(job.id) is first  # cached object reused
            store.claim_next()
            second = snapshot.job_bytes(job.id)
            assert second is not first
            assert json.loads(second)["job"]["state"] == "running"
            assert snapshot.job_bytes("nope") is None

    def test_list_jobs_mirrors_store_filters(self):
        with JobStore() as store:
            snapshot = ServiceSnapshot(store)
            snapshot.attach()
            store.submit("campaign", {"n": 1})
            store.submit("experiment", {"experiment": "E2"})
            assert len(snapshot.list_jobs()) == 2
            assert [j["kind"] for j in snapshot.list_jobs(kind="experiment")] == [
                "experiment"
            ]
            assert len(snapshot.list_jobs(limit=1)) == 1
            with pytest.raises(ValueError, match="unknown state"):
                snapshot.list_jobs(state="bogus")

    def test_detach_stops_updates(self):
        with JobStore() as store:
            snapshot = ServiceSnapshot(store)
            snapshot.attach()
            snapshot.detach()
            job = store.submit("campaign", {})
            assert snapshot.get(job.id) is None


class TestJobStoreListeners:
    def test_listener_sees_every_transition(self):
        states = []
        with JobStore() as store:
            store.subscribe(lambda record: states.append(record.state))
            job = store.submit("campaign", {})
            store.claim_next()
            store.update_progress(job.id, 1, 2)
            store.finish(job.id, {"type": "campaign"})
        assert states == ["queued", "running", "running", "done"]

    def test_failing_listener_does_not_break_the_store(self):
        def bad(record):
            raise RuntimeError("listener bug")

        seen = []
        with JobStore() as store:
            store.subscribe(bad)
            store.subscribe(lambda record: seen.append(record.id))
            job = store.submit("campaign", {})
            assert store.get(job.id) is not None  # store still works
            assert seen == [job.id]  # later listeners still ran
            store.unsubscribe(bad)
            store.unsubscribe(bad)  # unsubscribing twice is harmless


# ----------------------------------------------------------------------
# Gateway HTTP surface
# ----------------------------------------------------------------------


@pytest.fixture()
def gateway():
    store = JobStore()
    scheduler = JobScheduler(store, num_workers=1)
    server = GatewayServer(scheduler, port=0, sse_heartbeat=0.1)
    server.start()
    yield server
    server.shutdown()
    store.close()


def _raw_exchange(host, port, payload: bytes, *, expect: int = 1) -> bytes:
    """Send raw bytes, read until the peer closes or `expect` responses seen."""
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(payload)
        sock.settimeout(10)
        chunks = []
        while sum(chunk.count(b"HTTP/1.1 ") for chunk in chunks) < expect:
            try:
                chunk = sock.recv(65536)
            except socket.timeout:  # pragma: no cover - diagnosing hangs
                break
            if not chunk:
                break
            chunks.append(chunk)
        return b"".join(chunks)


class TestGatewayHTTP:
    def test_campaign_is_bit_identical_to_direct_run(self, gateway):
        spec = small_spec()
        client = ServiceClient(gateway.url)
        job = client.submit_campaign(spec)
        assert not job["deduplicated"]
        done = client.wait(job["id"], timeout=60)
        via_gateway = ServiceClient.campaign_result(done)
        direct = spec.run()
        assert via_gateway.makespans == direct.makespans

    def test_resubmit_deduplicates(self, gateway):
        client = ServiceClient(gateway.url)
        first = client.submit_campaign(small_spec())
        client.wait(first["id"], timeout=60)
        again = client.submit_campaign(small_spec())
        assert again["deduplicated"] and again["id"] == first["id"]

    def test_health_and_catalog_shapes(self, gateway):
        client = ServiceClient(gateway.url)
        health = client.health()
        assert health["status"] == "ok"
        assert health["server"] == "asyncio-gateway"
        assert set(health["jobs"]) == {"queued", "running", "done", "failed",
                                       "cancelled"}
        assert "queue_depth" in health["stats"]
        catalog = client.scenarios()
        assert "engines" in catalog and "experiments" in catalog

    def test_keep_alive_and_pipelining(self, gateway):
        request = (b"GET /v1/healthz HTTP/1.1\r\n"
                   b"Host: t\r\n\r\n")
        # Two requests in one write: both answered, in order, one connection.
        raw = _raw_exchange(gateway.host, gateway.port, request * 2, expect=2)
        assert raw.count(b"HTTP/1.1 200 OK") == 2
        assert b'"status": "ok"' in raw

    def test_header_split_across_tcp_segments(self, gateway):
        with socket.create_connection((gateway.host, gateway.port), timeout=10) as sock:
            sock.sendall(b"GET /v1/healthz HTT")
            time.sleep(0.05)
            sock.sendall(b"P/1.1\r\nHost: t\r\n\r\n")
            sock.settimeout(10)
            assert sock.recv(65536).startswith(b"HTTP/1.1 200 OK")

    def test_malformed_request_line_is_400(self, gateway):
        raw = _raw_exchange(gateway.host, gateway.port, b"NONSENSE\r\n\r\n")
        assert raw.startswith(b"HTTP/1.1 400 ")

    def test_unsupported_version_is_400(self, gateway):
        raw = _raw_exchange(
            gateway.host, gateway.port, b"GET /v1/healthz HTTP/0.9\r\n\r\n"
        )
        assert raw.startswith(b"HTTP/1.1 400 ")

    def test_unknown_path_404_and_method_405(self, gateway):
        client = ServiceClient(gateway.url)
        with pytest.raises(ServiceError) as exc_info:
            client._request("GET", "/v1/nope")
        assert exc_info.value.status == 404
        raw = _raw_exchange(
            gateway.host, gateway.port, b"PUT /v1/jobs HTTP/1.1\r\nHost: t\r\n\r\n"
        )
        assert raw.startswith(b"HTTP/1.1 405 ")

    def test_oversized_body_is_413_and_closes(self, gateway):
        gateway.max_body_bytes = 64
        try:
            head = (b"POST /v1/jobs HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: 1000\r\n\r\n")
            raw = _raw_exchange(gateway.host, gateway.port, head)
            assert raw.startswith(b"HTTP/1.1 413 ")
            assert b"Connection: close" in raw
        finally:
            gateway.max_body_bytes = 8 * 1024 * 1024

    def test_oversized_headers_are_431(self, gateway):
        huge = b"GET /v1/healthz HTTP/1.1\r\nX-Pad: " + b"a" * 70000 + b"\r\n\r\n"
        raw = _raw_exchange(gateway.host, gateway.port, huge)
        assert raw.startswith(b"HTTP/1.1 431 ")

    def test_bad_submit_is_400(self, gateway):
        client = ServiceClient(gateway.url)
        with pytest.raises(ServiceError) as exc_info:
            client._request("POST", "/v1/jobs", {"kind": "campaign"})
        assert exc_info.value.status == 400
        assert "scenario" in str(exc_info.value)

    def test_cancel_queued_job_and_audit_trail(self, gateway):
        gateway.scheduler.stop()  # park the workers: the job stays queued
        client = ServiceClient(gateway.url)
        job = client.submit_campaign(small_spec(num_runs=130))
        cancelled = client.cancel(job["id"])
        assert cancelled["state"] == "cancelled"
        actions = [entry["action"] for entry in gateway.audit.entries()]
        assert actions == ["job.submit", "job.cancel"]
        by_action = {entry["action"]: entry for entry in gateway.audit.entries()}
        assert by_action["job.cancel"]["job_id"] == job["id"]
        assert by_action["job.submit"]["correlation_id"]

    def test_preview_sweep(self, gateway):
        client = ServiceClient(gateway.url)
        preview = client.preview_sweep(small_spec(), {"num_runs": [10, 20]})
        assert preview["count"] == 2

    def test_port_conflict_raises_on_start(self, gateway):
        store = JobStore()
        other = GatewayServer(
            JobScheduler(store, num_workers=1), host=gateway.host, port=gateway.port
        )
        with pytest.raises(OSError):
            other.start()
        store.close()


class TestGatewayRateLimit:
    @pytest.fixture()
    def limited(self):
        store = JobStore()
        scheduler = JobScheduler(store, num_workers=1)
        server = GatewayServer(scheduler, port=0, rate_limit=5.0, burst=2)
        server.start()
        yield server
        server.shutdown()
        store.close()

    def test_429_retry_after_then_success_after_backoff(self, limited):
        """The e2e contract: throttled, told how long, obeying works."""
        client = ServiceClient(limited.url)
        assert client.scenarios() and client.scenarios()  # burst of 2
        with pytest.raises(ServiceError) as exc_info:
            client.scenarios()
        error = exc_info.value
        assert error.status == 429
        retry_after = error.payload["retry_after"]
        assert 0.0 < retry_after <= 0.2 + 1e-6  # 5 req/s -> next token < 200 ms
        time.sleep(retry_after + 0.02)
        assert client.scenarios()  # backing off as told succeeds

    def test_retry_after_header_is_ceiled_seconds(self, limited):
        for _ in range(2):
            ServiceClient(limited.url).scenarios()
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(limited.url + "/v1/scenarios")
        assert exc_info.value.code == 429
        assert int(exc_info.value.headers["Retry-After"]) >= 1

    def test_per_client_key_isolation(self, limited):
        def hit(key):
            request = urllib.request.Request(
                limited.url + "/v1/scenarios", headers={"X-Client-Key": key}
            )
            return urllib.request.urlopen(request).status

        assert [hit("alice") for _ in range(2)] == [200, 200]
        with pytest.raises(urllib.error.HTTPError):
            hit("alice")
        assert hit("bob") == 200  # alice's exhaustion never throttles bob

    def test_health_and_metrics_are_exempt(self, limited):
        from repro.obs.metrics import get_registry

        client = ServiceClient(limited.url)
        for _ in range(2):
            client.scenarios()
        # The process-global registry is shared with the in-process server.
        throttled_before = get_registry().total("repro_ratelimit_throttled_total")
        for _ in range(5):  # far past the burst: still served
            assert client.health()["status"] == "ok"
        assert "repro_http_requests_total" in client.metrics_text()
        # Exempt routes never count a rejection.
        after = get_registry().total("repro_ratelimit_throttled_total")
        assert after == throttled_before


# ----------------------------------------------------------------------
# Server-sent events
# ----------------------------------------------------------------------


class TestServerSentEvents:
    def test_progress_is_monotone_and_ends_terminal(self, gateway):
        client = ServiceClient(gateway.url)
        job = client.submit_campaign(small_spec(num_runs=150), chunk_size=50)
        seen = []
        for event, data in client.events(job["id"]):
            if event == "heartbeat":
                continue
            seen.append((event, data["state"], data["chunks_done"]))
            if event == "end":
                break
        names = [name for name, _, _ in seen]
        assert names[-1] == "end" and set(names[:-1]) <= {"progress"}
        done_counts = [done for _, _, done in seen]
        assert done_counts == sorted(done_counts)  # monotone, never regresses
        assert seen[-1][1] == "done"

    def test_wait_stream_true_needs_no_polling(self, gateway):
        client = ServiceClient(gateway.url)
        job = client.submit_campaign(small_spec(num_runs=140), chunk_size=70)
        polls = []
        original_job = client.job
        client.job = lambda job_id: polls.append(job_id) or original_job(job_id)
        states = []
        record = client.wait(
            job["id"], timeout=60, stream=True,
            on_progress=lambda r: states.append(r["state"]),
        )
        assert record["state"] == "done"
        assert record["result"]["type"] == "campaign"  # final fetch has it
        assert polls == [job["id"]]  # exactly one GET: the terminal fetch
        assert states[-1] == "done"

    def test_events_for_finished_job_is_single_end(self, gateway):
        client = ServiceClient(gateway.url)
        job = client.submit_campaign(small_spec(num_runs=110))
        client.wait(job["id"], timeout=60)
        events = list(client.events(job["id"]))
        assert [name for name, _ in events] == ["end"]
        assert events[0][1]["state"] == "done"

    def test_events_unknown_job_is_404(self, gateway):
        client = ServiceClient(gateway.url)
        with pytest.raises(ServiceError) as exc_info:
            next(iter(client.events("nope")))
        assert exc_info.value.status == 404

    def test_heartbeats_then_cancellation_event(self, gateway):
        gateway.scheduler.stop()  # park the workers: the job never starts
        client = ServiceClient(gateway.url)
        job = client.submit_campaign(small_spec(num_runs=160))
        seen = []

        def consume():
            for event, data in client.events(job["id"]):
                seen.append((event, data))
                if event == "end":
                    return

        consumer = threading.Thread(target=consume, daemon=True)
        consumer.start()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if any(name == "heartbeat" for name, _ in seen):
                break
            time.sleep(0.02)
        assert any(name == "heartbeat" for name, _ in seen)  # quiet stream beats
        client.cancel(job["id"])
        consumer.join(timeout=10)
        assert not consumer.is_alive()
        assert seen[-1][0] == "end" and seen[-1][1]["state"] == "cancelled"

    def test_client_disconnect_mid_stream_is_cleaned_up(self, gateway):
        gateway.scheduler.stop()  # keep the job queued so the stream stays open
        client = ServiceClient(gateway.url)
        job = client.submit_campaign(small_spec(num_runs=170))
        stream = client.events(job["id"])
        assert next(stream)[0] == "progress"  # stream is live
        deadline = time.monotonic() + 10
        while gateway._hub.subscriber_count(job["id"]) != 1:
            assert time.monotonic() < deadline
            time.sleep(0.02)
        stream.close()  # hang up mid-stream without reading the rest
        # The server notices at the next write (heartbeat every 0.1 s here)
        # and drops the subscription.
        while gateway._hub.subscriber_count(job["id"]) != 0:
            assert time.monotonic() < deadline, "subscriber leaked after disconnect"
            time.sleep(0.02)

    def test_client_parser_survives_partial_reads(self):
        """SSE frames split at arbitrary byte boundaries parse identically."""
        frames = (
            b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n"
            b"Connection: close\r\n\r\n"
            b": keep-alive\n\n"
            b"event: progress\ndata: {\"state\": \"running\", \"chunks_done\": 1}\n\n"
            b"event: end\ndata: {\"state\": \"done\", \"chunks_done\": 2}\n\n"
        )

        def serve_dribble(listener):
            conn, _ = listener.accept()
            conn.recv(65536)  # the request; content irrelevant
            for index in range(0, len(frames), 7):  # 7-byte TCP segments
                conn.sendall(frames[index:index + 7])
                time.sleep(0.001)
            conn.close()

        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        thread = threading.Thread(target=serve_dribble, args=(listener,), daemon=True)
        thread.start()
        try:
            client = ServiceClient(f"http://127.0.0.1:{port}")
            events = list(client.events("any"))
        finally:
            thread.join(timeout=10)
            listener.close()
        assert [name for name, _ in events if name != "heartbeat"] == [
            "progress", "end",
        ]
        assert any(name == "heartbeat" for name, _ in events)
        assert events[-1][1] == {"state": "done", "chunks_done": 2}

    def test_wait_stream_falls_back_to_polling_on_threaded_server(self):
        store = JobStore()
        scheduler = JobScheduler(store, num_workers=1)
        server = ScenarioServer(scheduler, port=0)
        server.start()
        try:
            client = ServiceClient(server.url)
            job = client.submit_campaign(small_spec(num_runs=115))
            done = client.wait(job["id"], timeout=60, stream=True)
            assert done["state"] == "done"
        finally:
            server.shutdown()
            store.close()


class TestGatewayCLI:
    @pytest.fixture(autouse=True)
    def _restore_log_handlers(self):
        # _cmd_serve configures the structured log stream before its
        # validation fires; undo it so later tests keep a quiet stderr.
        import logging

        yield
        root = logging.getLogger("repro")
        for handler in list(root.handlers):
            if getattr(handler, "_repro_obs_handler", False):
                root.removeHandler(handler)
        root.setLevel(logging.NOTSET)

    def test_serve_rejects_rate_limit_with_threaded_server(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit, match="rate-limit"):
            main(["serve", "--server", "threaded", "--rate-limit", "10"])

    def test_serve_validation_error_exits_cleanly(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="chunk_size"):
            main(["serve", "--chunk-size", "999999999"])
