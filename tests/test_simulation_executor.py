"""Tests for the discrete-event executor."""


import numpy as np
import pytest

from repro.core.schedule import Schedule, Segment
from repro.failures.traces import FailureEvent, FailureTrace
from repro.simulation.events import EventType
from repro.simulation.executor import simulate_schedule, simulate_segments
from repro.workflows.generators import uniform_random_chain


def single_segment(work=10.0, ckpt=1.0, recovery=2.0):
    return Segment(
        tasks=("T1",), work=work, checkpoint_cost=ckpt, recovery_cost=recovery, checkpointed=True
    )


class TestFailureFreeExecution:
    def test_no_failures_makespan_is_deterministic(self):
        # A trace with no failure events: the run is exactly work + checkpoint.
        trace = FailureTrace(events=(), horizon=1e9)
        result = simulate_segments([single_segment()], trace, downtime=1.0)
        assert result.makespan == pytest.approx(11.0)
        assert result.num_failures == 0
        assert result.wasted_time == 0.0
        assert result.useful_time == pytest.approx(11.0)

    def test_multiple_segments_failure_free(self):
        trace = FailureTrace(events=(), horizon=1e9)
        segments = [single_segment(5.0, 1.0), single_segment(3.0, 0.5)]
        result = simulate_segments(segments, trace, downtime=0.0)
        assert result.makespan == pytest.approx(9.5)


class TestDeterministicFailureScenarios:
    def test_single_failure_then_success(self):
        # Failure at t=4 interrupts the first attempt (needs 11); after
        # downtime 1 and recovery 2 the segment restarts at t=7 and finishes
        # at t=18 (no more failures).
        trace = FailureTrace(events=(FailureEvent(4.0),), horizon=1e9)
        result = simulate_segments([single_segment()], trace, downtime=1.0)
        assert result.num_failures == 1
        assert result.makespan == pytest.approx(4.0 + 1.0 + 2.0 + 11.0)
        assert result.wasted_time == pytest.approx(4.0 + 1.0 + 2.0)
        assert result.useful_time == pytest.approx(11.0)

    def test_failure_during_recovery(self):
        # First failure at t=4; recovery needs 2 but a second failure strikes
        # at t=6 (exactly at the end of downtime + 1 into recovery).
        trace = FailureTrace(events=(FailureEvent(4.0), FailureEvent(6.0)), horizon=1e9)
        result = simulate_segments([single_segment()], trace, downtime=1.0)
        assert result.num_failures == 2
        # Timeline: fail@4, downtime->5, recovery interrupted@6, downtime->7,
        # recovery 2 -> 9, segment 11 -> 20.
        assert result.makespan == pytest.approx(20.0)
        assert result.num_recovery_attempts == 2

    def test_failure_exactly_at_completion_does_not_interrupt(self):
        # delay == duration counts as success (failure strikes at the instant
        # the checkpoint commits).
        trace = FailureTrace(events=(FailureEvent(11.0),), horizon=1e9)
        result = simulate_segments([single_segment()], trace, downtime=1.0)
        assert result.num_failures == 0
        assert result.makespan == pytest.approx(11.0)

    def test_makespan_decomposition_invariant(self):
        trace = FailureTrace(
            events=(FailureEvent(2.0), FailureEvent(9.0), FailureEvent(25.0)), horizon=1e9
        )
        segments = [single_segment(6.0, 1.0, 1.5), single_segment(4.0, 0.5, 1.0)]
        result = simulate_segments(segments, trace, downtime=0.5)
        assert result.makespan == pytest.approx(result.useful_time + result.wasted_time)
        assert result.useful_time == pytest.approx(6.0 + 1.0 + 4.0 + 0.5)


class TestLogging:
    def test_log_records_expected_events(self):
        trace = FailureTrace(events=(FailureEvent(4.0),), horizon=1e9)
        result = simulate_segments([single_segment()], trace, downtime=1.0, record_log=True)
        log = result.log
        assert log is not None
        assert log.num_failures == 1
        assert log.num_checkpoints == 1
        assert log.makespan() == pytest.approx(result.makespan)
        assert len(log.of_type(EventType.RECOVERY_COMPLETED)) == 1
        assert len(log.of_type(EventType.TASK_COMPLETED)) == 1

    def test_log_absent_by_default(self):
        trace = FailureTrace(events=(), horizon=1e9)
        result = simulate_segments([single_segment()], trace, downtime=0.0)
        assert result.log is None


class TestStochasticExecution:
    def test_simulated_mean_matches_prop1(self, rng):
        from repro.core.expected_time import expected_completion_time

        work, ckpt, downtime, recovery, rate = 10.0, 1.0, 0.5, 2.0, 0.05
        segment = Segment(
            tasks=("T",), work=work, checkpoint_cost=ckpt, recovery_cost=recovery,
            checkpointed=True,
        )
        makespans = [
            simulate_segments([segment], rate, downtime, rng=rng).makespan
            for _ in range(20000)
        ]
        analytic = expected_completion_time(work, ckpt, downtime, recovery, rate)
        assert np.mean(makespans) == pytest.approx(analytic, rel=0.03)

    def test_schedule_wrapper(self, rng):
        chain = uniform_random_chain(5, seed=31)
        schedule = Schedule.for_chain(chain, [2, 4])
        result = simulate_schedule(schedule, 0.01, 0.5, rng=rng)
        assert result.makespan >= chain.total_work()

    def test_seed_reproducibility(self):
        chain = uniform_random_chain(5, seed=32)
        schedule = Schedule.for_chain(chain, [4])
        a = simulate_schedule(schedule, 0.05, 0.5, seed=7)
        b = simulate_schedule(schedule, 0.05, 0.5, seed=7)
        assert a.makespan == b.makespan
        assert a.num_failures == b.num_failures

    def test_rejects_negative_downtime(self):
        with pytest.raises(ValueError):
            simulate_segments([single_segment()], 0.1, -1.0)

    def test_pathological_instance_aborts(self):
        # MTBF of 0.01 against a segment of length 1000: no run can ever finish.
        segment = Segment(
            tasks=("T",), work=1000.0, checkpoint_cost=0.0, recovery_cost=0.0, checkpointed=False
        )
        with pytest.raises(RuntimeError, match="failures"):
            simulate_segments([segment], 100.0, 0.0, seed=1)
