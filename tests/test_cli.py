"""Tests for the command-line interface."""


import json

import pytest

from repro.cli import build_parser, main
from repro.workflows.generators import montage_like, uniform_random_chain
from repro.workflows.serialization import save_chain, save_workflow


@pytest.fixture
def chain_file(tmp_path):
    chain = uniform_random_chain(6, seed=130)
    path = tmp_path / "chain.json"
    save_chain(chain, path)
    return path


@pytest.fixture
def workflow_file(tmp_path):
    wf = montage_like(4, checkpoint_cost=0.5)
    path = tmp_path / "workflow.json"
    save_workflow(wf, path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_chain_requires_rate(self, chain_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve-chain", str(chain_file)])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "E3"])
        assert args.id == "E3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "E99"])


class TestSolveChain:
    def test_basic_output(self, chain_file, capsys):
        exit_code = main(["solve-chain", str(chain_file), "--rate", "0.02", "--downtime", "0.5"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "expected makespan" in out
        assert "checkpoint after" in out

    def test_compare_flag_lists_baselines(self, chain_file, capsys):
        main(["solve-chain", str(chain_file), "--rate", "0.02", "--compare"])
        out = capsys.readouterr().out
        assert "checkpoint_all" in out
        assert "optimal_dp" in out

    def test_budget_option(self, chain_file, capsys):
        main(["solve-chain", str(chain_file), "--rate", "0.05", "--max-checkpoints", "2"])
        out = capsys.readouterr().out
        assert "checkpoints        : 2" in out or "checkpoints        : 1" in out

    def test_no_final_checkpoint_flag(self, chain_file, capsys):
        exit_code = main([
            "solve-chain", str(chain_file), "--rate", "1e-6", "--no-final-checkpoint",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "checkpoints        : 0" in out


class TestSolveDag:
    def test_basic_output(self, workflow_file, capsys):
        exit_code = main(["solve-dag", str(workflow_file), "--rate", "0.02", "--seed", "1"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "linearisation" in out
        assert "expected makespan" in out

    def test_dot_flag(self, workflow_file, capsys):
        main(["solve-dag", str(workflow_file), "--rate", "0.02", "--dot"])
        out = capsys.readouterr().out
        assert "digraph" in out
        assert "doubleoctagon" in out


class TestSimulate:
    def test_with_explicit_positions(self, chain_file, capsys):
        exit_code = main([
            "simulate", str(chain_file), "--rate", "0.02", "--checkpoint-after", "2,5",
            "--runs", "300", "--seed", "1",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "analytic expectation" in out
        assert "simulated mean" in out

    def test_default_uses_optimal_placement(self, chain_file, capsys):
        main(["simulate", str(chain_file), "--rate", "0.02", "--runs", "200"])
        out = capsys.readouterr().out
        assert "using optimal placement" in out

    def test_rejects_out_of_range_position(self, chain_file):
        with pytest.raises(SystemExit, match="out of range"):
            main(["simulate", str(chain_file), "--rate", "0.02", "--checkpoint-after", "99"])

    def test_engine_flag_selects_vectorized_sampler(self, chain_file, capsys):
        exit_code = main([
            "simulate", str(chain_file), "--rate", "0.02", "--checkpoint-after", "2,5",
            "--runs", "200", "--seed", "1", "--engine", "vectorized",
        ])
        assert exit_code == 0
        vectorized_out = capsys.readouterr().out
        assert "simulated mean" in vectorized_out
        # Memoryless model: the scalar engine prints the exact same numbers.
        main([
            "simulate", str(chain_file), "--rate", "0.02", "--checkpoint-after", "2,5",
            "--runs", "200", "--seed", "1", "--engine", "scalar",
        ])
        assert capsys.readouterr().out == vectorized_out

    def test_invalid_engine_exits_cleanly(self, chain_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", str(chain_file), "--rate", "0.02", "--engine", "gpu"])
        assert excinfo.value.code == 2  # argparse usage error, not a traceback
        assert "invalid choice" in capsys.readouterr().err

    def test_invalid_parallel_exits_cleanly(self, chain_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", str(chain_file), "--rate", "0.02", "--parallel", "-3"])
        assert excinfo.value.code == 2
        assert "worker count" in capsys.readouterr().err


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        # Either the installed distribution version or the source-tree tag.
        assert any(ch.isdigit() for ch in out)


class TestExperimentCommand:
    def test_prints_table(self, capsys):
        exit_code = main(["experiment", "E2"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "E2" in out
        assert "rate" in out

    def test_csv_output(self, capsys):
        main(["experiment", "E2", "--csv"])
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("rate,")


class TestServiceCommands:
    """The serve/submit/jobs sub-commands (full HTTP round-trips live in
    tests/test_service.py; here: argument handling and end-to-end output)."""

    def test_submit_requires_spec_xor_experiment(self, tmp_path):
        with pytest.raises(SystemExit, match="either"):
            main(["submit", "--url", "http://127.0.0.1:1"])
        with pytest.raises(SystemExit, match="either"):
            main(["submit", str(tmp_path / "spec.json"), "--experiment", "E1"])

    def test_submit_unreachable_service_fails_cleanly(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        from repro.runtime.scenario import ChainSpec, FailureSpec, ScenarioSpec

        spec = ScenarioSpec(
            name="cli", chain=ChainSpec(n=4, seed=1),
            failure=FailureSpec(kind="exponential", mtbf=30.0), num_runs=50,
        )
        spec_path.write_text(spec.to_json())
        # Nothing listens on port 9: the client must fail with a message,
        # not a traceback.
        exit_code = main(["submit", str(spec_path), "--url", "http://127.0.0.1:9"])
        assert exit_code == 1
        assert "cannot reach the scenario service" in capsys.readouterr().err

    def test_jobs_against_live_service_and_submit_wait(self, tmp_path, capsys):
        from repro.runtime.scenario import ChainSpec, FailureSpec, ScenarioSpec
        from repro.service.jobs import JobStore
        from repro.service.queue import JobScheduler
        from repro.service.server import ScenarioServer

        spec = ScenarioSpec(
            name="cli-e2e", chain=ChainSpec(n=4, seed=1),
            failure=FailureSpec(kind="exponential", mtbf=30.0),
            strategies=("optimal_dp", "checkpoint_none"), num_runs=80, seed=5,
        )
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(spec.to_json())
        store = JobStore()
        server = ScenarioServer(JobScheduler(store), port=0)
        server.start()
        try:
            exit_code = main([
                "submit", str(spec_path), "--url", server.url, "--wait",
                "--timeout", "60",
            ])
            assert exit_code == 0
            captured = capsys.readouterr()
            assert "Simulation campaign" in captured.out and "optimal_dp" in captured.out
            # --wait surfaces the polled job's live progress (line-per-change
            # on a non-tty stderr); the final observation is the done state.
            progress_lines = [
                line for line in captured.err.splitlines() if line.startswith("job ")
            ]
            assert progress_lines and "done" in progress_lines[-1]

            assert main(["jobs", "--url", server.url]) == 0
            listing = capsys.readouterr().out
            assert "campaign" in listing and "done" in listing

            job_id = store.list_jobs()[0].id
            assert main(["jobs", job_id, "--url", server.url]) == 0
            detail = capsys.readouterr().out
            assert '"state": "done"' in detail
        finally:
            server.shutdown()
            store.close()

    def test_serve_rejects_engine_flag(self):
        # A scenario's samples are defined by its spec; the server must not
        # offer a flag that would silently (not) override job engines.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--engine", "vectorized"])

    def test_submit_missing_spec_file_fails_cleanly(self, capsys):
        exit_code = main(["submit", "/nonexistent/spec.json", "--url", "http://127.0.0.1:1"])
        assert exit_code == 1
        assert "cannot read spec" in capsys.readouterr().err

    def test_serve_rejects_oversized_chunk_size_at_startup(self, capsys):
        import logging

        from repro.service.queue import JobScheduler

        too_big = JobScheduler.MAX_CHUNK_SIZE + 1
        try:
            with pytest.raises(SystemExit, match="error: chunk_size"):
                main(["serve", "--port", "0", "--chunk-size", str(too_big)])
        finally:
            # _cmd_serve configures the structured log stream before the
            # validation fires; undo it so later tests keep a quiet stderr.
            root = logging.getLogger("repro")
            for handler in list(root.handlers):
                if getattr(handler, "_repro_obs_handler", False):
                    root.removeHandler(handler)
            root.setLevel(logging.NOTSET)

    def test_metrics_and_job_stats_against_live_service(self, tmp_path, capsys):
        from repro.runtime.cache import ResultCache
        from repro.runtime.scenario import ChainSpec, FailureSpec, ScenarioSpec
        from repro.service.jobs import JobStore
        from repro.service.queue import JobScheduler
        from repro.service.server import ScenarioServer

        spec = ScenarioSpec(
            name="cli-metrics", chain=ChainSpec(n=4, seed=1),
            failure=FailureSpec(kind="exponential", mtbf=30.0),
            strategies=("optimal_dp", "checkpoint_none"), num_runs=80, seed=5,
        )
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(spec.to_json())
        store = JobStore()
        scheduler = JobScheduler(store, cache=ResultCache(tmp_path / "cache"))
        server = ScenarioServer(scheduler, port=0)
        server.start()
        try:
            assert main([
                "submit", str(spec_path), "--url", server.url, "--wait",
                "--timeout", "60",
            ]) == 0
            capsys.readouterr()
            job_id = store.list_jobs()[0].id

            # Prometheus text over the wire.
            assert main(["metrics", "--url", server.url]) == 0
            text = capsys.readouterr().out
            assert "# TYPE repro_jobs_submitted_total counter" in text
            assert "repro_cache_requests_total" in text
            assert "repro_http_requests_total" in text

            # JSON snapshot form.
            assert main(["metrics", "--url", server.url, "--json"]) == 0
            snapshot = json.loads(capsys.readouterr().out)
            assert snapshot["repro_jobs_submitted_total"]["kind"] == "counter"

            # Listing with the timing columns.
            assert main(["jobs", "--url", server.url, "--stats"]) == 0
            listing = capsys.readouterr().out
            assert "queue_s" in listing and "compute_s" in listing and "cache_s" in listing

            # Single-job breakdown with percentage shares.
            assert main(["jobs", job_id, "--url", server.url, "--stats"]) == 0
            detail = capsys.readouterr().out
            assert f"job {job_id}: done" in detail
            for phase in ("queue_wait_s", "compute_s", "cache_s"):
                assert phase in detail
            assert "%" in detail
        finally:
            server.shutdown()
            store.close()

    def test_metrics_unreachable_service_fails_cleanly(self, capsys):
        exit_code = main(["metrics", "--url", "http://127.0.0.1:9"])
        assert exit_code == 1
        assert "cannot reach the scenario service" in capsys.readouterr().err

    def test_jobs_stats_before_execution_reports_no_breakdown(self, capsys):
        from repro.runtime.scenario import ChainSpec, FailureSpec, ScenarioSpec
        from repro.service.jobs import JobStore
        from repro.service.queue import JobScheduler
        from repro.service.server import ScenarioServer

        store = JobStore()
        scheduler = JobScheduler(store)
        server = ScenarioServer(scheduler, port=0)
        server.start()
        try:
            scheduler.stop()  # keep HTTP alive, never execute the job
            spec = ScenarioSpec(
                name="queued-only", chain=ChainSpec(n=3, seed=2),
                failure=FailureSpec(kind="exponential", mtbf=25.0), num_runs=50,
            )
            record, _ = scheduler.submit_campaign(spec.to_dict())
            assert main(["jobs", record.id, "--url", server.url, "--stats"]) == 0
            out = capsys.readouterr().out
            assert f"job {record.id}: queued" in out
            assert "no timing breakdown yet" in out
        finally:
            server.shutdown()
            store.close()
