"""Tests for the Workflow DAG model."""

import pytest

from repro.workflows.dag import Workflow
from repro.workflows.task import Task


def chain_tasks(n):
    return [Task(f"T{i}", float(i + 1), 0.1 * (i + 1), 0.1 * (i + 1)) for i in range(n)]


class TestWorkflowConstruction:
    def test_basic(self):
        tasks = chain_tasks(3)
        wf = Workflow(tasks, [("T0", "T1"), ("T1", "T2")])
        assert len(wf) == 3
        assert "T1" in wf
        assert wf.dependences() == [("T0", "T1"), ("T1", "T2")]

    def test_duplicate_task_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Workflow([Task("A", 1.0), Task("A", 2.0)])

    def test_unknown_dependence_endpoint_rejected(self):
        with pytest.raises(ValueError, match="unknown task"):
            Workflow([Task("A", 1.0)], [("A", "B")])

    def test_self_dependence_rejected(self):
        with pytest.raises(ValueError, match="self-dependence"):
            Workflow([Task("A", 1.0)], [("A", "A")])

    def test_cycle_rejected(self):
        tasks = [Task("A", 1.0), Task("B", 1.0)]
        with pytest.raises(ValueError, match="cycle"):
            Workflow(tasks, [("A", "B"), ("B", "A")])

    def test_non_task_rejected(self):
        with pytest.raises(TypeError):
            Workflow(["not a task"])  # type: ignore[list-item]


class TestWorkflowAccessors:
    def test_task_lookup(self, diamond_workflow):
        assert diamond_workflow.task("B").work == 3.0

    def test_task_lookup_missing(self, diamond_workflow):
        with pytest.raises(KeyError):
            diamond_workflow.task("Z")

    def test_predecessors_successors(self, diamond_workflow):
        assert set(diamond_workflow.predecessors("D")) == {"B", "C"}
        assert set(diamond_workflow.successors("A")) == {"B", "C"}

    def test_sources_sinks(self, diamond_workflow):
        assert diamond_workflow.sources() == ["A"]
        assert diamond_workflow.sinks() == ["D"]

    def test_total_work(self, diamond_workflow):
        assert diamond_workflow.total_work() == pytest.approx(11.0)

    def test_iter_yields_names(self, diamond_workflow):
        assert set(diamond_workflow) == {"A", "B", "C", "D"}


class TestChainDetection:
    def test_chain_is_chain(self):
        wf = Workflow.from_chain(chain_tasks(4))
        assert wf.is_chain()
        assert wf.chain_order() == ["T0", "T1", "T2", "T3"]

    def test_single_task_is_chain(self):
        wf = Workflow([Task("A", 1.0)])
        assert wf.is_chain()

    def test_diamond_is_not_chain(self, diamond_workflow):
        assert not diamond_workflow.is_chain()
        with pytest.raises(ValueError):
            diamond_workflow.chain_order()

    def test_independent_is_not_chain(self):
        wf = Workflow.from_independent(chain_tasks(3))
        assert not wf.is_chain()
        assert wf.is_independent()

    def test_chain_is_not_independent(self):
        wf = Workflow.from_chain(chain_tasks(2))
        assert not wf.is_independent()

    def test_disconnected_pair_of_chains_not_a_chain(self):
        tasks = chain_tasks(4)
        wf = Workflow(tasks, [("T0", "T1"), ("T2", "T3")])
        assert not wf.is_chain()


class TestTopologicalOrders:
    def test_topological_order_valid(self, diamond_workflow):
        order = diamond_workflow.topological_order()
        assert diamond_workflow.is_valid_order(order)

    def test_all_topological_orders_of_diamond(self, diamond_workflow):
        orders = diamond_workflow.all_topological_orders()
        # The diamond has exactly two linear extensions: ABCD and ACBD.
        assert len(orders) == 2
        assert ["A", "B", "C", "D"] in orders
        assert ["A", "C", "B", "D"] in orders

    def test_all_topological_orders_limit(self):
        wf = Workflow.from_independent(chain_tasks(5))
        orders = wf.all_topological_orders(limit=10)
        assert len(orders) == 10

    def test_is_valid_order_rejects_violation(self, diamond_workflow):
        assert not diamond_workflow.is_valid_order(["B", "A", "C", "D"])

    def test_is_valid_order_rejects_wrong_tasks(self, diamond_workflow):
        assert not diamond_workflow.is_valid_order(["A", "B", "C"])

    def test_validate_order_raises_with_message(self, diamond_workflow):
        with pytest.raises(ValueError, match="violates dependence"):
            diamond_workflow.validate_order(["B", "A", "C", "D"])

    def test_validate_order_rejects_non_permutation(self, diamond_workflow):
        with pytest.raises(ValueError, match="permutation"):
            diamond_workflow.validate_order(["A", "A", "B", "C"])


class TestFrontier:
    def test_frontier_mid_chain_is_last_task(self):
        wf = Workflow.from_chain(chain_tasks(4))
        order = wf.chain_order()
        for k in range(3):
            assert wf.frontier_after(order, k) == {order[k]}

    def test_frontier_of_last_position_is_exit_task(self):
        wf = Workflow.from_chain(chain_tasks(3))
        order = wf.chain_order()
        assert wf.frontier_after(order, 2) == {"T2"}

    def test_frontier_diamond_after_two_branches(self, diamond_workflow):
        # After executing A, B, C (positions 0..2), both B and C feed D.
        frontier = diamond_workflow.frontier_after(["A", "B", "C", "D"], 2)
        assert frontier == {"B", "C"}

    def test_frontier_diamond_after_one_branch(self, diamond_workflow):
        # After A, B: A still has unexecuted successor C, and B feeds D.
        frontier = diamond_workflow.frontier_after(["A", "B", "C", "D"], 1)
        assert frontier == {"A", "B"}

    def test_frontier_independent_tasks_all_live(self):
        wf = Workflow.from_independent(chain_tasks(3))
        order = wf.task_names()
        assert wf.frontier_after(order, 1) == set(order[:2])

    def test_frontier_rejects_bad_position(self, diamond_workflow):
        with pytest.raises(ValueError):
            diamond_workflow.frontier_after(["A", "B", "C", "D"], 4)


class TestStructuralMetrics:
    def test_critical_path_of_chain_is_total_work(self):
        wf = Workflow.from_chain(chain_tasks(3))
        assert wf.critical_path_length() == pytest.approx(1 + 2 + 3)

    def test_critical_path_diamond(self, diamond_workflow):
        # Longest path is A -> C -> D = 2 + 5 + 1.
        assert diamond_workflow.critical_path_length() == pytest.approx(8.0)

    def test_critical_path_independent(self):
        wf = Workflow.from_independent(chain_tasks(3))
        assert wf.critical_path_length() == pytest.approx(3.0)


class TestTransforms:
    def test_subworkflow(self, diamond_workflow):
        sub = diamond_workflow.subworkflow(["A", "B", "D"])
        assert len(sub) == 3
        assert ("A", "B") in sub.dependences()
        assert ("B", "D") in sub.dependences()
        assert ("A", "C") not in sub.dependences()

    def test_relabeled(self, diamond_workflow):
        renamed = diamond_workflow.relabeled({"A": "start"})
        assert "start" in renamed
        assert "A" not in renamed
        assert ("start", "B") in renamed.dependences()

    def test_repr(self, diamond_workflow):
        assert "diamond" in repr(diamond_workflow)
