"""Tests for the Task abstraction."""

import pytest

from repro.workflows.task import Task


class TestTaskConstruction:
    def test_basic(self):
        task = Task("T1", 5.0, 1.0, 2.0)
        assert task.name == "T1"
        assert task.work == 5.0
        assert task.checkpoint_cost == 1.0
        assert task.recovery_cost == 2.0

    def test_defaults(self):
        task = Task("T", 1.0)
        assert task.checkpoint_cost == 0.0
        assert task.recovery_cost == 0.0
        assert task.memory_footprint is None

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Task("", 1.0)

    def test_rejects_non_string_name(self):
        with pytest.raises(ValueError):
            Task(123, 1.0)  # type: ignore[arg-type]

    def test_rejects_zero_work(self):
        with pytest.raises(ValueError):
            Task("T", 0.0)

    def test_rejects_negative_checkpoint(self):
        with pytest.raises(ValueError):
            Task("T", 1.0, checkpoint_cost=-1.0)

    def test_rejects_negative_recovery(self):
        with pytest.raises(ValueError):
            Task("T", 1.0, recovery_cost=-0.5)

    def test_rejects_negative_footprint(self):
        with pytest.raises(ValueError):
            Task("T", 1.0, memory_footprint=-10.0)

    def test_coerces_to_float(self):
        task = Task("T", 3, 1, 2)
        assert isinstance(task.work, float)
        assert isinstance(task.checkpoint_cost, float)

    def test_frozen(self):
        task = Task("T", 1.0)
        with pytest.raises(AttributeError):
            task.work = 2.0  # type: ignore[misc]


class TestTaskTransforms:
    def test_with_costs_partial_replacement(self):
        task = Task("T", 5.0, 1.0, 2.0)
        updated = task.with_costs(checkpoint_cost=3.0)
        assert updated.checkpoint_cost == 3.0
        assert updated.recovery_cost == 2.0
        assert updated.work == 5.0
        assert updated.name == "T"

    def test_with_costs_replace_work(self):
        task = Task("T", 5.0)
        assert task.with_costs(work=8.0).work == 8.0

    def test_scaled(self):
        task = Task("T", 4.0, 1.0)
        scaled = task.scaled(2.5)
        assert scaled.work == 10.0
        assert scaled.checkpoint_cost == 1.0

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValueError):
            Task("T", 1.0).scaled(0.0)

    def test_str_contains_costs(self):
        text = str(Task("T9", 2.0, 0.5, 0.25))
        assert "T9" in text
        assert "0.5" in text
