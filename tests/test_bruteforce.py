"""Tests for the brute-force reference solvers."""

import pytest

from repro.analysis.bruteforce import (
    brute_force_chain_checkpoints,
    brute_force_independent_schedule,
)
from repro.core.schedule import Schedule
from repro.workflows.chain import LinearChain
from repro.workflows.generators import uniform_random_chain


class TestBruteForceChain:
    def test_single_task(self):
        chain = LinearChain(works=[5.0], checkpoint_costs=[1.0], recovery_costs=[1.0])
        result = brute_force_chain_checkpoints(chain, 0.0, 0.05)
        assert result.checkpoint_after == (0,)

    def test_value_achieved_by_schedule(self):
        chain = uniform_random_chain(6, seed=21)
        result = brute_force_chain_checkpoints(chain, 0.3, 0.04)
        schedule = Schedule.for_chain(chain, result.checkpoint_after)
        assert schedule.expected_makespan(0.3, 0.04) == pytest.approx(
            result.expected_makespan, rel=1e-12
        )

    def test_no_placement_is_better(self):
        chain = uniform_random_chain(5, seed=22)
        result = brute_force_chain_checkpoints(chain, 0.3, 0.04)
        import itertools

        for r in range(5):
            for subset in itertools.combinations(range(4), r):
                positions = list(subset) + [4]
                value = Schedule.for_chain(chain, positions).expected_makespan(0.3, 0.04)
                assert value >= result.expected_makespan - 1e-12

    def test_final_checkpoint_false(self):
        chain = uniform_random_chain(4, seed=23)
        result = brute_force_chain_checkpoints(chain, 0.1, 0.02, final_checkpoint=False)
        assert 3 not in result.checkpoint_after or result.checkpoint_after == ()
        # Last position may legitimately be absent; value must still beat the
        # "with final checkpoint" optimum or equal it.
        with_final = brute_force_chain_checkpoints(chain, 0.1, 0.02, final_checkpoint=True)
        assert result.expected_makespan <= with_final.expected_makespan + 1e-12

    def test_refuses_long_chains(self):
        chain = uniform_random_chain(30, seed=24)
        with pytest.raises(ValueError, match="max_tasks"):
            brute_force_chain_checkpoints(chain, 0.1, 0.02)

    def test_invalid_parameters(self):
        chain = uniform_random_chain(3, seed=25)
        with pytest.raises(ValueError):
            brute_force_chain_checkpoints(chain, -1.0, 0.02)
        with pytest.raises(ValueError):
            brute_force_chain_checkpoints(chain, 0.0, 0.0)


class TestBruteForceIndependent:
    def test_delegates_to_exhaustive(self):
        result = brute_force_independent_schedule([2.0, 3.0, 4.0], 1.0, 1.0, 0.0, 0.05)
        assert result.exact
        assert sum(result.group_works()) == pytest.approx(9.0)

    def test_refuses_large_instances(self):
        with pytest.raises(ValueError):
            brute_force_independent_schedule([1.0] * 15, 1.0, 1.0, 0.0, 0.05)
