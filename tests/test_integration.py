"""Integration tests: full pipelines from workflow generation to simulation."""

import numpy as np
import pytest

from repro import (
    CheckpointPlan,
    LinearChain,
    MonteCarloEstimator,
    Platform,
    Schedule,
    WeibullFailure,
    evaluate_chain_strategies,
    exhaustive_dag_schedule,
    montage_like,
    optimal_chain_checkpoints,
    schedule_dag,
    schedule_independent_tasks,
    simulate_schedule,
    uniform_random_chain,
    work_maximization_chain,
)


class TestAnalyticVsSimulation:
    """The analytic evaluator and the simulator must agree on expectations."""

    def test_chain_dp_schedule_expectation_matches_simulation(self):
        rng = np.random.default_rng(7)
        chain = uniform_random_chain(10, work_range=(2.0, 8.0), checkpoint_range=(0.5, 1.5), rng=rng)
        downtime, rate = 0.5, 0.02
        result = optimal_chain_checkpoints(chain, downtime, rate)
        schedule = result.to_schedule()
        estimator = MonteCarloEstimator(schedule, rate, downtime)
        estimate = estimator.estimate(8000, rng=rng)
        assert estimate.relative_error(result.expected_makespan) < 0.05
        assert estimate.contains(result.expected_makespan, level=0.99)

    def test_independent_heuristic_expectation_matches_simulation(self):
        rng = np.random.default_rng(8)
        works = list(rng.uniform(2.0, 10.0, size=8))
        downtime, rate = 0.2, 0.03
        result = schedule_independent_tasks(works, 1.0, 1.0, downtime, rate)
        schedule = result.to_schedule()
        estimator = MonteCarloEstimator(schedule, rate, downtime)
        estimate = estimator.estimate(6000, rng=rng)
        assert estimate.relative_error(result.expected_makespan) < 0.05

    def test_dag_schedule_expectation_matches_simulation(self):
        rng = np.random.default_rng(9)
        workflow = montage_like(4, checkpoint_cost=0.4)
        downtime, rate = 0.3, 0.02
        result = schedule_dag(workflow, downtime, rate, seed=9)
        schedule = result.to_schedule()
        estimator = MonteCarloEstimator(schedule, rate, downtime)
        estimate = estimator.estimate(6000, rng=rng)
        assert estimate.relative_error(result.expected_makespan) < 0.05


class TestOptimalityEndToEnd:
    def test_dp_placement_beats_baselines_in_simulation(self):
        """The DP's superiority must also show up in simulated makespans."""
        rng = np.random.default_rng(10)
        chain = uniform_random_chain(20, work_range=(3.0, 9.0), checkpoint_range=(0.5, 1.0), rng=rng)
        downtime, rate = 0.5, 0.05
        strategies = evaluate_chain_strategies(chain, downtime, rate)
        simulated = {}
        for name in ("optimal_dp", "checkpoint_all", "checkpoint_none"):
            schedule = strategies[name].to_schedule()
            estimator = MonteCarloEstimator(schedule, rate, downtime)
            simulated[name] = estimator.estimate(3000, rng=rng).mean
        assert simulated["optimal_dp"] <= simulated["checkpoint_all"] * 1.02
        assert simulated["optimal_dp"] <= simulated["checkpoint_none"] * 1.02

    def test_exhaustive_dag_at_least_as_good_as_any_manual_schedule(self, diamond_workflow):
        downtime, rate = 0.1, 0.05
        exact = exhaustive_dag_schedule(diamond_workflow, downtime, rate)
        for order in diamond_workflow.all_topological_orders():
            for positions in ([3], [0, 3], [1, 3], [2, 3], [0, 1, 2, 3]):
                plan = CheckpointPlan.from_positions(4, positions)
                manual = Schedule(diamond_workflow, order, plan).expected_makespan(downtime, rate)
                assert exact.expected_makespan <= manual + 1e-9


class TestNonExponentialPipeline:
    def test_weibull_pipeline_runs_and_ranks_strategies(self):
        rng = np.random.default_rng(11)
        chain = uniform_random_chain(12, work_range=(4.0, 10.0), checkpoint_range=(0.5, 1.0), rng=rng)
        law = WeibullFailure.from_mtbf(120.0, shape=0.7)
        platform = Platform(num_processors=1, failure_law=law, downtime=0.5)

        placements = {
            "work_max": work_maximization_chain(chain, law).checkpoint_after,
            "none": (chain.n - 1,),
        }
        means = {}
        for name, positions in placements.items():
            schedule = Schedule.for_chain(chain, positions)
            estimator = MonteCarloEstimator(schedule, platform, 0.5)
            means[name] = estimator.estimate(800, rng=rng).mean
        # With an MTBF comparable to the total work, saving work must beat
        # never checkpointing.
        assert means["work_max"] < means["none"]


class TestSimulatorInvariants:
    def test_work_conservation_across_many_runs(self):
        rng = np.random.default_rng(12)
        chain = uniform_random_chain(8, seed=12)
        schedule = Schedule.for_chain(chain, [3, 7])
        expected_useful = schedule.failure_free_time()
        for _ in range(50):
            result = simulate_schedule(schedule, 0.03, 0.5, rng=rng)
            assert result.useful_time == pytest.approx(expected_useful)
            assert result.makespan == pytest.approx(result.useful_time + result.wasted_time)
            assert result.wasted_time >= 0.0

    def test_more_failures_mean_longer_makespans_on_average(self):
        rng = np.random.default_rng(13)
        chain = uniform_random_chain(10, seed=13)
        schedule = Schedule.for_chain(chain, [4, 9])
        low_rate = MonteCarloEstimator(schedule, 1e-4, 0.5).estimate(500, rng=rng)
        high_rate = MonteCarloEstimator(schedule, 5e-2, 0.5).estimate(500, rng=rng)
        assert high_rate.mean > low_rate.mean
        assert high_rate.mean_failures > low_rate.mean_failures


class TestPublicApi:
    def test_version_string(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_quickstart_snippet_from_module_docstring(self):
        chain = LinearChain(
            works=[10.0, 4.0, 7.0],
            checkpoint_costs=[1.0, 0.5, 2.0],
            recovery_costs=[1.0, 0.5, 2.0],
        )
        result = optimal_chain_checkpoints(chain, downtime=0.5, rate=0.01)
        assert result.expected_makespan > 0
        assert result.checkpoint_after
