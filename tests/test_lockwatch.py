"""Tests for the runtime lock-order watchdog (repro.devtools.lockwatch).

The inversion tests provoke a *real* ordering inversion -- two threads
nesting the same pair of locks in opposite orders -- but sequence the
threads with joins so the test itself can never deadlock: the second
nesting starts only after the first thread has released everything.
"""

from __future__ import annotations

import threading

import pytest

from repro.devtools.lockwatch import (
    ENV_VAR,
    LockOrderError,
    LockOrderWatchdog,
    active_watchdog,
    install_watchdog,
    tracked_condition,
    tracked_lock,
)


def _run_thread(fn, name):
    worker = threading.Thread(target=fn, name=name)
    worker.start()
    worker.join(timeout=10.0)
    assert not worker.is_alive(), f"thread {name} did not finish"


@pytest.fixture
def isolated_global_watchdog():
    """Clear the process-global watchdog for the test, restoring it after."""
    previous = install_watchdog(None)
    try:
        yield
    finally:
        install_watchdog(previous)


class TestOrderTracking:
    def test_consistent_nesting_is_clean(self):
        watchdog = LockOrderWatchdog()
        outer = watchdog.wrap(threading.Lock(), "A")
        inner = watchdog.wrap(threading.Lock(), "B")

        def nest():
            with outer:
                with inner:
                    pass

        _run_thread(nest, "order-t1")
        _run_thread(nest, "order-t2")
        assert watchdog.inversions() == []
        assert watchdog.edges() == {"A": {"B"}}
        assert watchdog.format_report() == "no lock-order inversions recorded"
        watchdog.assert_clean()

    def test_inversion_between_two_threads_is_recorded(self):
        watchdog = LockOrderWatchdog()
        a = watchdog.wrap(threading.Lock(), "A")
        b = watchdog.wrap(threading.Lock(), "B")

        def forward():
            with a:
                with b:
                    pass

        def backward():
            with b:
                with a:
                    pass

        _run_thread(forward, "inv-forward")
        _run_thread(backward, "inv-backward")

        (inversion,) = watchdog.inversions()
        assert inversion["held"] == "B"
        assert inversion["acquiring"] == "A"
        assert inversion["thread"] == "inv-backward"
        assert inversion["reverse_thread"] == "inv-forward"
        assert set(inversion["cycle"]) == {"A", "B"}
        with pytest.raises(LockOrderError, match="A"):
            watchdog.assert_clean()
        assert "inv-backward" in watchdog.format_report()

    def test_inversion_reported_once_per_pair(self):
        watchdog = LockOrderWatchdog()
        a = watchdog.wrap(threading.Lock(), "A")
        b = watchdog.wrap(threading.Lock(), "B")

        def forward():
            with a:
                with b:
                    pass

        def backward():
            with b:
                with a:
                    pass

        _run_thread(forward, "dedup-forward")
        for attempt in range(3):
            _run_thread(backward, f"dedup-backward-{attempt}")
        assert len(watchdog.inversions()) == 1

    def test_transitive_cycle_is_detected(self):
        watchdog = LockOrderWatchdog()
        a = watchdog.wrap(threading.Lock(), "A")
        b = watchdog.wrap(threading.Lock(), "B")
        c = watchdog.wrap(threading.Lock(), "C")

        def a_then_b():
            with a:
                with b:
                    pass

        def b_then_c():
            with b:
                with c:
                    pass

        def c_then_a():
            with c:
                with a:
                    pass

        _run_thread(a_then_b, "cycle-t1")
        _run_thread(b_then_c, "cycle-t2")
        _run_thread(c_then_a, "cycle-t3")
        (inversion,) = watchdog.inversions()
        assert inversion["held"] == "C"
        assert inversion["acquiring"] == "A"
        assert inversion["cycle"] == ["C", "A", "B"]

    def test_raise_on_inversion(self):
        watchdog = LockOrderWatchdog(raise_on_inversion=True)
        a = watchdog.wrap(threading.Lock(), "A")
        b = watchdog.wrap(threading.Lock(), "B")
        with a:
            with b:
                pass
        # Same thread re-nesting in the opposite order is just as much of
        # an inversion: the graph is cross-thread but cycles are cycles.
        with pytest.raises(LockOrderError, match="closing"):
            with b:
                with a:
                    pass

    def test_reentrant_rlock_records_no_self_edge(self):
        watchdog = LockOrderWatchdog()
        guard = watchdog.wrap(threading.RLock(), "R")
        with guard:
            with guard:
                pass
        assert watchdog.edges() == {}
        assert watchdog.inversions() == []

    def test_nonblocking_acquire_failure_records_nothing(self):
        watchdog = LockOrderWatchdog()
        guard = watchdog.wrap(threading.Lock(), "G")
        held = threading.Event()
        release = threading.Event()

        def holder():
            with guard:
                held.set()
                assert release.wait(timeout=10.0)

        worker = threading.Thread(target=holder, name="nb-holder")
        worker.start()
        assert held.wait(timeout=10.0)
        assert guard.acquire(False) is False
        assert guard.locked()
        release.set()
        worker.join(timeout=10.0)
        assert not guard.locked()


class TestTrackedLockSeam:
    def test_raw_lock_when_no_watchdog(self, isolated_global_watchdog):
        guard = tracked_lock("seam.raw")
        assert type(guard) is type(threading.Lock())
        condition = tracked_condition("seam.raw-cond")
        assert isinstance(condition, threading.Condition)

    def test_wrapped_when_installed(self, isolated_global_watchdog):
        watchdog = LockOrderWatchdog()
        install_watchdog(watchdog)
        guard = tracked_lock("seam.wrapped")
        assert guard.name == "seam.wrapped"
        with guard:
            pass
        rlock = tracked_lock("seam.rlock", threading.RLock)
        with rlock:
            with rlock:
                pass
        assert watchdog.inversions() == []

    def test_install_returns_previous(self, isolated_global_watchdog):
        first = LockOrderWatchdog()
        second = LockOrderWatchdog()
        assert install_watchdog(first) is None
        assert install_watchdog(second) is first
        assert install_watchdog(None) is second

    def test_env_var_activation(self, isolated_global_watchdog, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "1")
        watchdog = active_watchdog()
        assert watchdog is not None
        guard = tracked_lock("seam.env")
        assert guard.name == "seam.env"
        # The lazily created watchdog is sticky until explicitly replaced.
        assert active_watchdog() is watchdog

    def test_env_var_zero_means_off(self, isolated_global_watchdog, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "0")
        assert active_watchdog() is None

    def test_watchdog_is_bound_at_construction(self, isolated_global_watchdog):
        first = LockOrderWatchdog()
        install_watchdog(first)
        guard = tracked_lock("seam.bound")
        second = LockOrderWatchdog()
        install_watchdog(second)
        a = second.wrap(threading.Lock(), "A2")
        with guard:
            with a:
                pass
        # The nesting spans watchdogs, so neither sees a full edge pair;
        # what matters is the early lock kept reporting to `first`.
        assert "seam.bound" not in second.edges()


class TestTrackedCondition:
    def test_wait_notify_roundtrip(self, isolated_global_watchdog):
        watchdog = LockOrderWatchdog()
        install_watchdog(watchdog)
        condition = tracked_condition("cond.roundtrip")
        ready: list = []

        def producer():
            with condition:
                ready.append("item")
                condition.notify_all()

        def consumer():
            with condition:
                while not ready:
                    assert condition.wait(timeout=10.0)

        consumer_thread = threading.Thread(target=consumer, name="cond-consumer")
        consumer_thread.start()
        producer_thread = threading.Thread(target=producer, name="cond-producer")
        producer_thread.start()
        consumer_thread.join(timeout=10.0)
        producer_thread.join(timeout=10.0)
        assert not consumer_thread.is_alive()
        assert ready == ["item"]
        assert watchdog.inversions() == []

    def test_wait_releases_all_recursion_levels(self, isolated_global_watchdog):
        watchdog = LockOrderWatchdog()
        install_watchdog(watchdog)
        condition = tracked_condition("cond.reentrant")
        other = tracked_lock("cond.other")
        done = threading.Event()

        def waiter():
            with condition:
                with condition:
                    # Waiting drops every recursion level; on wake the
                    # watchdog's per-thread stack must be restored, so the
                    # subsequent nested acquisition records a normal edge
                    # and no phantom ordering survives from before wait().
                    condition.wait(timeout=0.05)
                    with other:
                        pass
            done.set()

        _run_thread(waiter, "cond-waiter")
        assert done.is_set()
        assert watchdog.inversions() == []
        assert watchdog.edges() == {"cond.reentrant": {"cond.other"}}
