"""Tests for independent-task scheduling (the NP-complete case of Proposition 2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expected_time import expected_completion_time
from repro.core.independent import (
    balanced_grouping,
    exhaustive_independent_schedule,
    grouping_expected_time,
    optimal_group_count,
    schedule_independent_tasks,
)


class TestGroupingExpectedTime:
    def test_single_group_matches_prop1(self):
        works = [3.0, 5.0, 2.0]
        value = grouping_expected_time([[0, 1, 2]], works, 1.0, 1.0, 0.5, 0.05)
        expected = expected_completion_time(10.0, 1.0, 0.5, 1.0, 0.05)
        assert value == pytest.approx(expected)

    def test_two_groups_sum(self):
        works = [3.0, 5.0]
        value = grouping_expected_time([[0], [1]], works, 1.0, 2.0, 0.5, 0.05)
        expected = expected_completion_time(3.0, 1.0, 0.5, 2.0, 0.05) + expected_completion_time(
            5.0, 1.0, 0.5, 2.0, 0.05
        )
        assert value == pytest.approx(expected)

    def test_initial_recovery_defaults_to_recovery(self):
        works = [3.0]
        with_default = grouping_expected_time([[0]], works, 1.0, 2.0, 0.0, 0.05)
        explicit = grouping_expected_time(
            [[0]], works, 1.0, 2.0, 0.0, 0.05, initial_recovery=2.0
        )
        assert with_default == pytest.approx(explicit)

    def test_custom_initial_recovery(self):
        works = [3.0]
        zero_initial = grouping_expected_time(
            [[0]], works, 1.0, 2.0, 0.0, 0.05, initial_recovery=0.0
        )
        expected = expected_completion_time(3.0, 1.0, 0.0, 0.0, 0.05)
        assert zero_initial == pytest.approx(expected)

    def test_order_of_groups_irrelevant(self):
        works = [3.0, 5.0, 2.0, 7.0]
        a = grouping_expected_time([[0, 1], [2, 3]], works, 1.0, 1.0, 0.0, 0.05)
        b = grouping_expected_time([[2, 3], [0, 1]], works, 1.0, 1.0, 0.0, 0.05)
        assert a == pytest.approx(b)

    def test_duplicate_task_rejected(self):
        with pytest.raises(ValueError, match="more than one group"):
            grouping_expected_time([[0], [0]], [1.0, 2.0], 1.0, 1.0, 0.0, 0.05)

    def test_missing_task_rejected(self):
        with pytest.raises(ValueError, match="not assigned"):
            grouping_expected_time([[0]], [1.0, 2.0], 1.0, 1.0, 0.0, 0.05)

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            grouping_expected_time([[0, 5]], [1.0, 2.0], 1.0, 1.0, 0.0, 0.05)

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            grouping_expected_time([[0, 1], []], [1.0, 2.0], 1.0, 1.0, 0.0, 0.05)


class TestExhaustiveOptimum:
    def test_three_identical_tasks_high_rate_groups_singletons(self):
        result = exhaustive_independent_schedule([10.0, 10.0, 10.0], 0.1, 0.1, 0.0, 0.5)
        assert result.num_checkpoints == 3
        assert result.exact

    def test_three_tasks_negligible_rate_single_group(self):
        result = exhaustive_independent_schedule([1.0, 1.0, 1.0], 2.0, 2.0, 0.0, 1e-6)
        assert result.num_checkpoints == 1

    def test_refuses_large_instances(self):
        with pytest.raises(ValueError, match="max_tasks"):
            exhaustive_independent_schedule([1.0] * 20, 1.0, 1.0, 0.0, 0.1)

    def test_group_works_consistent(self):
        result = exhaustive_independent_schedule([2.0, 3.0, 4.0, 5.0], 1.0, 1.0, 0.0, 0.1)
        assert sum(result.group_works()) == pytest.approx(14.0)

    def test_to_schedule_matches_expected_makespan(self):
        result = exhaustive_independent_schedule([2.0, 3.0, 4.0], 1.0, 1.0, 0.5, 0.08)
        schedule = result.to_schedule()
        assert schedule.expected_makespan(0.5, 0.08) == pytest.approx(
            result.expected_makespan, rel=1e-12
        )


class TestOptimalGroupCount:
    def test_balanced_instance_prefers_proof_value(self):
        # With lambda = 1/(2T) and C = (ln2 - 1/2)/lambda, the proof shows the
        # relaxed optimum is exactly n groups of work T each.
        target = 100.0
        n = 5
        rate = 1.0 / (2.0 * target)
        checkpoint = (math.log(2.0) - 0.5) / rate
        assert optimal_group_count(n * target, checkpoint, rate, max_groups=3 * n) == n

    def test_free_checkpoints_maximise_group_count(self):
        assert optimal_group_count(100.0, 0.0, 0.5, max_groups=50) == 50

    def test_rare_failures_single_group(self):
        assert optimal_group_count(10.0, 5.0, 1e-9, max_groups=10) == 1

    def test_rejects_zero_max_groups(self):
        with pytest.raises(ValueError):
            optimal_group_count(10.0, 1.0, 0.1, max_groups=0)


class TestBalancedGrouping:
    def test_partitions_all_tasks(self):
        groups = balanced_grouping([5.0, 3.0, 8.0, 2.0, 7.0], 2)
        flat = sorted(i for g in groups for i in g)
        assert flat == [0, 1, 2, 3, 4]

    def test_one_group(self):
        groups = balanced_grouping([1.0, 2.0], 1)
        assert groups == [[0, 1]]

    def test_n_groups_are_singletons(self):
        groups = balanced_grouping([1.0, 2.0, 3.0], 3)
        assert sorted(map(tuple, groups)) == [(0,), (1,), (2,)]

    def test_lpt_balances_loads(self):
        works = [9.0, 8.0, 7.0, 6.0, 5.0, 4.0]
        groups = balanced_grouping(works, 2)
        loads = [sum(works[i] for i in g) for g in groups]
        assert abs(loads[0] - loads[1]) <= 3.0

    def test_rejects_bad_group_count(self):
        with pytest.raises(ValueError):
            balanced_grouping([1.0, 2.0], 3)
        with pytest.raises(ValueError):
            balanced_grouping([1.0, 2.0], 0)


class TestHeuristicScheduler:
    @pytest.mark.parametrize("n,seed", [(5, 1), (6, 2), (7, 3), (8, 4)])
    def test_heuristic_close_to_exhaustive(self, n, seed, rng):
        import numpy as np

        generator = np.random.default_rng(seed)
        works = list(generator.uniform(1.0, 10.0, size=n))
        heuristic = schedule_independent_tasks(works, 1.0, 1.0, 0.0, 0.08)
        optimum = exhaustive_independent_schedule(works, 1.0, 1.0, 0.0, 0.08)
        assert heuristic.expected_makespan <= optimum.expected_makespan * 1.02 + 1e-9

    def test_heuristic_never_worse_than_trivial_groupings(self):
        works = [4.0, 9.0, 2.0, 7.0, 5.0, 6.0, 1.0]
        heuristic = schedule_independent_tasks(works, 1.0, 1.0, 0.5, 0.05)
        one_group = grouping_expected_time(
            [list(range(len(works)))], works, 1.0, 1.0, 0.5, 0.05
        )
        singletons = grouping_expected_time(
            [[i] for i in range(len(works))], works, 1.0, 1.0, 0.5, 0.05
        )
        assert heuristic.expected_makespan <= one_group + 1e-9
        assert heuristic.expected_makespan <= singletons + 1e-9

    def test_explicit_group_counts(self):
        works = [1.0, 2.0, 3.0, 4.0]
        result = schedule_independent_tasks(
            works, 0.5, 0.5, 0.0, 0.05, group_counts=[2]
        )
        assert result.num_checkpoints == 2

    def test_group_counts_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            schedule_independent_tasks([1.0, 2.0], 0.5, 0.5, 0.0, 0.05, group_counts=[3])

    def test_yes_three_partition_instance_recovers_balanced_groups(self):
        # Nine values forming three triples of sum 120, under the proof's parameters.
        works = [50.0, 40.0, 30.0, 45.0, 41.0, 34.0, 48.0, 39.0, 33.0]
        target = 120.0
        rate = 1.0 / (2.0 * target)
        checkpoint = (math.log(2.0) - 0.5) / rate
        result = schedule_independent_tasks(works, checkpoint, checkpoint, 0.0, rate)
        # The optimal value is n * e^{lambda C}/lambda * (e^{lambda(T+C)} - 1).
        bound = 3 * math.exp(rate * checkpoint) / rate * math.expm1(rate * (target + checkpoint))
        assert result.expected_makespan == pytest.approx(bound, rel=1e-9)
        assert result.num_checkpoints == 3
        assert sorted(result.group_works()) == pytest.approx([120.0, 120.0, 120.0])

    def test_result_metadata(self):
        result = schedule_independent_tasks([1.0, 2.0, 3.0], 0.5, 0.7, 0.1, 0.05)
        assert result.works == (1.0, 2.0, 3.0)
        assert result.checkpoint_cost == 0.5
        assert result.recovery_cost == 0.7
        assert not result.exact


class TestIndependentProperties:
    @given(
        works=st.lists(st.floats(min_value=0.5, max_value=10.0), min_size=2, max_size=6),
        rate=st.floats(min_value=1e-3, max_value=0.3),
        checkpoint=st.floats(min_value=0.0, max_value=3.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_heuristic_upper_bounds_exhaustive(self, works, rate, checkpoint):
        heuristic = schedule_independent_tasks(works, checkpoint, checkpoint, 0.0, rate)
        optimum = exhaustive_independent_schedule(works, checkpoint, checkpoint, 0.0, rate)
        assert heuristic.expected_makespan >= optimum.expected_makespan - 1e-9
        # ... and stays within a modest factor of it.
        assert heuristic.expected_makespan <= optimum.expected_makespan * 1.05 + 1e-9

    @given(
        works=st.lists(st.floats(min_value=0.5, max_value=10.0), min_size=1, max_size=8),
        rate=st.floats(min_value=1e-3, max_value=0.3),
    )
    @settings(max_examples=40, deadline=None)
    def test_expected_time_at_least_total_work(self, works, rate):
        result = schedule_independent_tasks(works, 1.0, 1.0, 0.0, rate)
        assert result.expected_makespan >= sum(works) - 1e-9
