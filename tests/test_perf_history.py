"""Tests for the bench perf-history trend renderer (repro.perf_history)."""

from __future__ import annotations

import json

import pytest

from repro.perf_history import (
    group_series,
    load_history,
    main,
    render_trends,
    sparkline,
)


def _write_history(path, records):
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


RECORDS = [
    {"bench": "bench_a", "mode": "quick", "metric": "seconds", "value": 2.0,
     "git_sha": "aaaa111122223333"},
    {"bench": "bench_a", "mode": "quick", "metric": "seconds", "value": 1.0,
     "git_sha": "bbbb111122223333"},
    {"bench": "bench_a", "mode": "quick", "metric": "seconds", "value": 1.5,
     "git_sha": "cccc111122223333"},
    {"bench": "bench_b", "mode": "full", "metric": "seconds", "value": 9.0,
     "git_sha": None},
]


class TestLoadHistory:
    def test_skips_blank_and_malformed_lines(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        path.write_text(
            json.dumps(RECORDS[0]) + "\n"
            "\n"
            "{not json}\n"
            '{"other": "shape"}\n'
            + json.dumps(RECORDS[1]) + "\n",
            encoding="utf-8",
        )
        records = load_history(str(path))
        assert [r["value"] for r in records] == [2.0, 1.0]
        assert "malformed" in capsys.readouterr().err

    def test_round_trips_harness_records(self, tmp_path):
        path = tmp_path / "history.jsonl"
        _write_history(path, RECORDS)
        assert len(load_history(str(path))) == len(RECORDS)


class TestGroupSeries:
    def test_groups_by_bench_mode_metric(self):
        series = group_series(RECORDS)
        assert set(series) == {
            ("bench_a", "quick", "seconds"), ("bench_b", "full", "seconds")
        }
        assert [r["value"] for r in series[("bench_a", "quick", "seconds")]] == [
            2.0, 1.0, 1.5
        ]

    def test_defaults_for_missing_mode_and_metric(self):
        series = group_series([{"bench": "x", "value": 1.0}])
        assert set(series) == {("x", "full", "seconds")}


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series_uses_lowest_glyph(self):
        assert sparkline([3.0, 3.0, 3.0]) == "▁▁▁"

    def test_monotone_series_rises(self):
        line = sparkline([1.0, 2.0, 3.0, 4.0])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"
        assert list(line) == sorted(line)


class TestRenderTrends:
    def test_table_contains_series_and_ratio(self):
        text = render_trends(RECORDS)
        assert "bench_a" in text and "bench_b" in text
        # latest 1.5 vs best 1.0
        assert "1.50x" in text
        # short sha of the latest bench_a record
        assert "cccc111122" in text

    def test_bench_substring_filter(self):
        text = render_trends(RECORDS, bench="_a")
        assert "bench_a" in text and "bench_b" not in text

    def test_mode_filter(self):
        text = render_trends(RECORDS, mode="full")
        assert "bench_b" in text and "bench_a" not in text

    def test_no_matches_message(self):
        assert render_trends(RECORDS, bench="nope") == "no matching perf records"
        assert render_trends([]) == "no matching perf records"

    def test_last_bounds_sparkline_not_best(self):
        records = [
            {"bench": "x", "mode": "full", "metric": "seconds", "value": v}
            for v in [0.5, 10.0, 10.0, 10.0]
        ]
        text = render_trends(records, last=2)
        # The sparkline shows 2 values, but vs_best still sees the 0.5 run.
        assert "20.00x" in text

    def test_non_numeric_series_is_dropped(self):
        records = RECORDS + [
            {"bench": "bad", "mode": "full", "metric": "seconds", "value": "n/a"}
        ]
        text = render_trends(records)
        assert "bad" not in text


class TestMain:
    def test_renders_file(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        _write_history(path, RECORDS)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "bench_a" in out

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.jsonl")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_filters_forwarded(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        _write_history(path, RECORDS)
        assert main([str(path), "--bench", "_b", "--mode", "full"]) == 0
        out = capsys.readouterr().out
        assert "bench_b" in out and "bench_a" not in out


class TestCliSubcommand:
    def test_bench_history_subcommand(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        path = tmp_path / "history.jsonl"
        _write_history(path, RECORDS)
        assert cli_main(["bench-history", str(path), "--bench", "_a"]) == 0
        out = capsys.readouterr().out
        assert "bench_a" in out and "1.50x" in out

    def test_bench_history_missing_file(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["bench-history", str(tmp_path / "gone.jsonl")]) == 1
        assert "cannot read" in capsys.readouterr().err


def test_harness_provenance_fields():
    """The bench harness stamps commit, python, numpy and cpu count."""
    import importlib.util
    import os

    spec = importlib.util.spec_from_file_location(
        "bench_harness",
        os.path.join(os.path.dirname(__file__), os.pardir, "benchmarks", "harness.py"),
    )
    harness = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(harness)
    stamp = harness.provenance()
    assert set(stamp) == {"git_sha", "python", "numpy", "cpu_count"}
    assert stamp["python"].count(".") == 2
    assert stamp["numpy"] is not None
    assert stamp["cpu_count"] >= 1
