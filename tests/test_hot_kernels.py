"""Property sweeps pinning the hot-kernel optimisations to their references.

The PR 10 burn-down rewrote four kernels for speed while keeping their
outputs bit-for-bit (or, for the local search, value-) identical to the
code they replaced:

* the fused Poisson compare+advance veteran round
  (:func:`repro.simulation.vectorized.simulate_poisson_batch`) vs the
  lock-step kernel and the scalar event loop;
* the streaming budget DP (``method="streaming"``) vs the reference tables,
  including the ``budget=0`` / ``final_checkpoint=False`` edges;
* the incremental local search (``use_cache=True``) vs the same kernel with
  the cache disabled, and value agreement with the scalar reference search;
* the precomputed frontier tables in
  :func:`repro.core.dag_scheduling.place_checkpoints_on_order` vs the
  per-cell Python model calls, including custom ``combine`` callables (which
  keep the per-call path) and the empty-DAG edge.

Each sweep runs many randomized seeds and shapes: these kernels' contracts
are exactness claims, so a single lucky instance proves nothing.
"""

import numpy as np
import pytest

from repro.core.chain_dp import optimal_chain_checkpoints_budget
from repro.core.dag_scheduling import linearize, place_checkpoints_on_order
from repro.core.independent import (
    _local_search,
    _local_search_vectorized,
    balanced_grouping,
    grouping_expected_time,
)
from repro.core.schedule import Schedule
from repro.models.checkpoint import FrontierCheckpointCost
from repro.simulation.executor import simulate_segments
from repro.simulation.vectorized import (
    PlannedExponentialDelays,
    PlannedPoissonSource,
    simulate_poisson_batch,
    simulate_poisson_batch_lockstep,
)
from repro.workflows.dag import Workflow
from repro.workflows.generators import (
    fork_join,
    montage_like,
    random_layered_dag,
    uniform_random_chain,
)

DOWNTIME = 0.5
RATE = 0.01


def _segments(n: int, seed: int):
    chain = uniform_random_chain(
        n, work_range=(2.0, 9.0), checkpoint_range=(0.3, 1.2),
        rng=np.random.default_rng(seed),
    )
    return Schedule.for_chain(chain, range(n)).segments()


def _batch_fields(batch):
    return (
        batch.makespans, batch.num_failures, batch.wasted_times,
        batch.useful_times, batch.recovery_attempts,
    )


class TestFusedPoissonSweep:
    """The fused veteran round is bit-identical to lock-step and scalar.

    The sweep spans the moderate-failure regime the fusion targets (a
    handful of failures per replication, where the pre-fusion kernel fell
    back to lock-step pacing) as well as rare- and dense-failure shapes,
    with random windows forcing mid-chain round boundaries.
    """

    # (chain length, expected failures per replication, downtime, batch size)
    SHAPES = [
        (5, 0.3, 0.5, 24),
        (16, 1.5, 0.0, 32),
        (33, 2.5, 1.0, 24),
        (64, 4.0, 0.25, 16),
        (128, 0.05, 0.5, 16),
        (9, 8.0, 0.75, 24),
    ]

    @pytest.mark.parametrize("n,expected_failures,downtime,count", SHAPES)
    @pytest.mark.parametrize("seed", [1, 12, 123])
    def test_fused_jump_matches_lockstep_and_scalar(
        self, n, expected_failures, downtime, count, seed
    ):
        segments = _segments(n, seed)
        length = sum(s.work + s.checkpoint_cost for s in segments)
        rate = expected_failures / length
        rng = np.random.default_rng(seed + 1000)
        window = int(rng.integers(1, n + 2))

        def plan():
            return PlannedExponentialDelays(
                np.random.default_rng(seed), 1.0 / rate, count,
                first_rounds=n + 4,
            )

        jump = simulate_poisson_batch(
            segments, rate, downtime, None, count, plan=plan(), method="jump"
        )
        lock = simulate_poisson_batch_lockstep(
            segments, rate, downtime, None, count, plan=plan()
        )
        auto = simulate_poisson_batch(
            segments, rate, downtime, None, count, plan=plan()
        )
        capped = simulate_poisson_batch(
            segments, rate, downtime, None, count, plan=plan(), window=window
        )
        for j, lk, a, c in zip(
            _batch_fields(jump), _batch_fields(lock),
            _batch_fields(auto), _batch_fields(capped),
        ):
            np.testing.assert_array_equal(j, lk)
            np.testing.assert_array_equal(j, a)
            np.testing.assert_array_equal(j, c)

        # Scalar event-loop spot checks: first, middle and last replication.
        shared = plan()
        for index in (0, count // 2, count - 1):
            scalar = simulate_segments(
                segments, PlannedPoissonSource(shared, index), downtime
            )
            assert scalar.makespan == jump.makespans[index]
            assert scalar.num_failures == jump.num_failures[index]
            assert scalar.wasted_time == jump.wasted_times[index]
            assert scalar.num_recovery_attempts == jump.recovery_attempts[index]


class TestStreamingBudgetDPSweep:
    """``method="streaming"`` reproduces the reference tables bit-for-bit."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("n", [1, 7, 23, 60])
    def test_streaming_matches_reference(self, n, seed):
        chain = uniform_random_chain(n, seed=seed)
        rng = np.random.default_rng(seed + 77)
        caps = {1, 2, max(n // 2, 1), n, n + 3, int(rng.integers(1, n + 2))}
        for cap in sorted(caps):
            for final_checkpoint in (True, False):
                reference = optimal_chain_checkpoints_budget(
                    chain, DOWNTIME, RATE, cap,
                    final_checkpoint=final_checkpoint, method="reference",
                )
                streamed = optimal_chain_checkpoints_budget(
                    chain, DOWNTIME, RATE, cap,
                    final_checkpoint=final_checkpoint, method="streaming",
                )
                assert streamed.expected_makespan == reference.expected_makespan
                assert streamed.checkpoint_after == reference.checkpoint_after

    def test_zero_budget_edge(self):
        # budget=0 is only legal without a mandatory final checkpoint; the
        # streamed kernel must agree that no checkpoints is the only plan.
        chain = uniform_random_chain(9, seed=5)
        reference = optimal_chain_checkpoints_budget(
            chain, DOWNTIME, RATE, 0, final_checkpoint=False, method="reference"
        )
        streamed = optimal_chain_checkpoints_budget(
            chain, DOWNTIME, RATE, 0, final_checkpoint=False, method="streaming"
        )
        assert streamed.checkpoint_after == reference.checkpoint_after == ()
        assert streamed.expected_makespan == reference.expected_makespan


class TestCachedLocalSearchSweep:
    """The per-group cost-column cache never changes a single bit.

    Per-block arithmetic is elementwise, so caching blocks across rounds is
    a pure re-batching: cached and uncached runs must agree on the partition
    *and* the value exactly.  Against the scalar reference search the
    contract is value agreement (sub-ulp deltas can steer the two into
    different equal-quality optima, see tests/test_analytic_kernels.py).
    """

    @pytest.mark.parametrize("seed", range(8))
    def test_cached_equals_uncached_bitwise(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(6, 48))
        m = int(rng.integers(1, max(n // 2, 2)))
        works = list(rng.uniform(0.5, 12.0, size=n))
        start = [list(g) for g in balanced_grouping(works, m)]
        initial_recovery = None if seed % 2 else 0.25
        args = (works, 1.0, 0.8, 0.4, 0.03, initial_recovery, 120)
        cached = _local_search_vectorized(
            [list(g) for g in start], *args, use_cache=True
        )
        uncached = _local_search_vectorized(
            [list(g) for g in start], *args, use_cache=False
        )
        assert cached == uncached

    @pytest.mark.parametrize("seed", range(4))
    def test_value_agreement_with_reference_search(self, seed):
        rng = np.random.default_rng(seed + 50)
        n = int(rng.integers(6, 30))
        m = int(rng.integers(1, max(n // 3, 2)))
        works = list(rng.uniform(0.5, 12.0, size=n))
        start = [list(g) for g in balanced_grouping(works, m)]
        args = (works, 1.0, 0.8, 0.4, 0.03, None, 120)
        fast_groups, fast_value = _local_search_vectorized(
            [list(g) for g in start], *args
        )
        ref_groups, ref_value = _local_search([list(g) for g in start], *args)
        assert fast_value == pytest.approx(ref_value, rel=1e-9)
        # Whatever partition each settles in, the reported value must be the
        # true expected makespan of a real partition of all n tasks.
        assert sorted(i for g in fast_groups for i in g) == list(range(n))
        recomputed = grouping_expected_time(
            [sorted(g) for g in fast_groups if g], works, 1.0, 0.8, 0.4, 0.03
        )
        assert fast_value == pytest.approx(recomputed, rel=1e-12)


class TestFrontierPrecomputeSweep:
    """Precomputed liveness tables reproduce per-cell model calls exactly."""

    def _workflows(self, seed):
        return [
            fork_join(5, branch_work=3.0, checkpoint_cost=0.4, seed=seed),
            montage_like(3, checkpoint_cost=0.3),
            random_layered_dag(3, 4, seed=seed),
            uniform_random_chain(12, seed=seed).to_workflow(),
        ]

    @pytest.mark.parametrize("seed", [2, 21])
    @pytest.mark.parametrize("combine_name", ["sum", "max"])
    def test_precomputed_matches_reference(self, seed, combine_name):
        combine = {"sum": sum, "max": max}[combine_name]
        rng = np.random.default_rng(seed)
        for workflow in self._workflows(seed):
            model = FrontierCheckpointCost(workflow, combine=combine)
            for order in (
                workflow.topological_order(),
                linearize(workflow, "random", rng=rng),
            ):
                for rate in (0.01, 0.2):
                    reference = place_checkpoints_on_order(
                        workflow, order, DOWNTIME, rate,
                        checkpoint_model=model, method="reference",
                    )
                    vectorized = place_checkpoints_on_order(
                        workflow, order, DOWNTIME, rate,
                        checkpoint_model=model, method="vectorized",
                    )
                    assert vectorized == reference

    def test_custom_combine_keeps_per_call_path_and_matches(self):
        # A custom callable cannot be replayed by the tables, so the
        # vectorized path falls back to per-call costs -- still exact.
        def widest_plus_tax(costs):
            return max(costs) + 0.01 * len(costs)

        workflow = montage_like(3, checkpoint_cost=0.3)
        order = workflow.topological_order()
        model = FrontierCheckpointCost(workflow, combine=widest_plus_tax)
        reference = place_checkpoints_on_order(
            workflow, order, DOWNTIME, 0.05,
            checkpoint_model=model, method="reference",
        )
        vectorized = place_checkpoints_on_order(
            workflow, order, DOWNTIME, 0.05,
            checkpoint_model=model, method="vectorized",
        )
        assert vectorized == reference

    def test_empty_dag_edge(self):
        empty = Workflow([], [])
        for method in ("reference", "vectorized"):
            positions, makespan = place_checkpoints_on_order(
                empty, [], DOWNTIME, RATE, method=method
            )
            assert positions == ()
            assert makespan == 0.0
