"""Tests for the convexity analysis of the NP-completeness proof."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.convexity import (
    balanced_group_expectation,
    g_derivative,
    g_function,
    g_second_derivative,
    optimal_continuous_group_count,
    proof_parameters,
)
from repro.core.independent import grouping_expected_time


class TestGFunction:
    def test_value(self):
        # g(m) = m (e^{lambda (W/m + C)} - 1)
        value = g_function(2.0, 10.0, 1.0, 0.1)
        assert value == pytest.approx(2.0 * math.expm1(0.1 * 6.0))

    def test_second_derivative_positive(self):
        for m in (0.5, 1.0, 3.0, 10.0):
            assert g_second_derivative(m, 50.0, 2.0, 0.05) > 0.0

    def test_derivative_matches_finite_difference(self):
        m, w, c, rate = 3.0, 40.0, 1.5, 0.07
        h = 1e-6
        numeric = (g_function(m + h, w, c, rate) - g_function(m - h, w, c, rate)) / (2 * h)
        assert g_derivative(m, w, c, rate) == pytest.approx(numeric, rel=1e-5)

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ValueError):
            g_function(0.0, 1.0, 0.0, 0.1)
        with pytest.raises(ValueError):
            g_function(1.0, -1.0, 0.0, 0.1)


class TestProofParameters:
    def test_identities_of_the_proof(self):
        params = proof_parameters(target_sum=120.0, num_subsets=4)
        value, derivative = params.verify_identities(120.0, 4)
        # e^{lambda (T + C)} = 2 and g'(n) = 0 by construction.
        assert value == pytest.approx(2.0, rel=1e-12)
        assert derivative == pytest.approx(0.0, abs=1e-12)

    def test_rate_and_cost_definitions(self):
        params = proof_parameters(target_sum=50.0, num_subsets=3)
        assert params.rate == pytest.approx(1.0 / 100.0)
        assert params.checkpoint_cost == pytest.approx((math.log(2.0) - 0.5) * 100.0)
        assert params.downtime == 0.0

    def test_bound_matches_closed_form(self):
        t, n = 120.0, 3
        params = proof_parameters(t, n)
        expected = (
            n * math.exp(params.rate * params.checkpoint_cost) / params.rate
            * math.expm1(params.rate * (t + params.checkpoint_cost))
        )
        assert params.bound == pytest.approx(expected)

    def test_bound_equals_balanced_expectation_at_n_groups(self):
        t, n = 120.0, 5
        params = proof_parameters(t, n)
        balanced = balanced_group_expectation(n, n * t, params.checkpoint_cost, params.rate)
        assert balanced == pytest.approx(params.bound, rel=1e-12)

    def test_n_groups_is_the_integer_minimiser(self):
        t, n = 90.0, 4
        params = proof_parameters(t, n)
        values = {
            m: balanced_group_expectation(m, n * t, params.checkpoint_cost, params.rate)
            for m in range(1, 3 * n + 1)
        }
        assert min(values, key=values.get) == n

    def test_continuous_minimiser_is_n(self):
        t, n = 75.0, 6
        params = proof_parameters(t, n)
        m_star = optimal_continuous_group_count(n * t, params.checkpoint_cost, params.rate)
        assert m_star == pytest.approx(float(n), rel=1e-6)

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ValueError):
            proof_parameters(0.0, 3)
        with pytest.raises(ValueError):
            proof_parameters(10.0, 0)


class TestBalancedLowerBound:
    @given(
        num_groups=st.integers(min_value=1, max_value=6),
        target=st.floats(min_value=10.0, max_value=200.0),
        rate=st.floats(min_value=1e-3, max_value=0.05),
        checkpoint=st.floats(min_value=0.0, max_value=20.0),
        imbalance=st.floats(min_value=0.0, max_value=0.8),
    )
    @settings(max_examples=60, deadline=None)
    def test_balanced_expectation_lower_bounds_unbalanced_partitions(
        self, num_groups, target, rate, checkpoint, imbalance
    ):
        """The convexity step of the proof: balance minimises the sum.

        Build a partition of total work ``num_groups * target`` into groups of
        works target*(1 +/- imbalance) (pairwise compensated) and compare with
        the perfectly balanced lower bound E0.
        """
        works = []
        for index in range(num_groups):
            if index % 2 == 0 and index + 1 < num_groups:
                works.append(target * (1.0 + imbalance))
            elif index % 2 == 1:
                works.append(target * (1.0 - imbalance))
            else:
                works.append(target)
        groups = [[i] for i in range(len(works))]
        unbalanced = grouping_expected_time(
            groups, works, checkpoint, checkpoint, 0.0, rate
        )
        balanced = balanced_group_expectation(
            len(works), sum(works), checkpoint, rate
        )
        assert unbalanced >= balanced - 1e-6 * balanced


class TestContinuousMinimiser:
    def test_root_of_derivative(self):
        m_star = optimal_continuous_group_count(500.0, 3.0, 0.01)
        assert g_derivative(m_star, 500.0, 3.0, 0.01) == pytest.approx(0.0, abs=1e-6)

    def test_capped_at_max_groups(self):
        # With a zero checkpoint cost, g is decreasing in m for all m, so the
        # minimiser saturates at the cap.
        m_star = optimal_continuous_group_count(100.0, 0.0, 0.5, max_groups=1000.0)
        assert m_star == 1000.0
