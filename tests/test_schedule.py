"""Tests for CheckpointPlan, Segment and Schedule."""

import pytest

from repro.core.expected_time import expected_completion_time
from repro.core.schedule import CheckpointPlan, Schedule, Segment, expected_makespan
from repro.models.checkpoint import FrontierCheckpointCost
from repro.workflows.dag import Workflow
from repro.workflows.task import Task


class TestCheckpointPlan:
    def test_never(self):
        plan = CheckpointPlan.never(4)
        assert plan.num_checkpoints == 0
        assert plan.checkpoint_positions() == []

    def test_after_every_task(self):
        plan = CheckpointPlan.after_every_task(3)
        assert plan.num_checkpoints == 3

    def test_every_k(self):
        plan = CheckpointPlan.every_k(7, 3)
        assert plan.checkpoint_positions() == [2, 5, 6]

    def test_every_k_without_final(self):
        plan = CheckpointPlan.every_k(7, 3, include_last=False)
        assert plan.checkpoint_positions() == [2, 5]

    def test_every_k_rejects_zero(self):
        with pytest.raises(ValueError):
            CheckpointPlan.every_k(5, 0)

    def test_from_positions(self):
        plan = CheckpointPlan.from_positions(5, [1, 3])
        assert plan.flags == (False, True, False, True, False)

    def test_from_positions_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            CheckpointPlan.from_positions(3, [5])

    def test_with_final_checkpoint(self):
        plan = CheckpointPlan.never(3).with_final_checkpoint()
        assert plan.flags == (False, False, True)

    def test_indexing(self):
        plan = CheckpointPlan.from_positions(3, [0])
        assert plan[0] is True
        assert plan[2] is False
        assert len(plan) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CheckpointPlan(flags=())


class TestSegment:
    def test_expected_time_uses_prop1(self):
        segment = Segment(
            tasks=("A", "B"), work=10.0, checkpoint_cost=1.0, recovery_cost=2.0, checkpointed=True
        )
        assert segment.expected_time(0.5, 0.05) == pytest.approx(
            expected_completion_time(10.0, 1.0, 0.5, 2.0, 0.05)
        )

    def test_rejects_empty_task_list(self):
        with pytest.raises(ValueError):
            Segment(tasks=(), work=1.0, checkpoint_cost=0.0, recovery_cost=0.0, checkpointed=False)

    def test_rejects_negative_work(self):
        with pytest.raises(ValueError):
            Segment(tasks=("A",), work=-1.0, checkpoint_cost=0.0, recovery_cost=0.0, checkpointed=False)


class TestScheduleConstruction:
    def test_invalid_order_rejected(self, diamond_workflow):
        plan = CheckpointPlan.never(4)
        with pytest.raises(ValueError):
            Schedule(diamond_workflow, ["B", "A", "C", "D"], plan)

    def test_plan_length_mismatch_rejected(self, diamond_workflow):
        plan = CheckpointPlan.never(3)
        with pytest.raises(ValueError, match="positions"):
            Schedule(diamond_workflow, ["A", "B", "C", "D"], plan)

    def test_for_chain(self, small_chain):
        schedule = Schedule.for_chain(small_chain, [1, 3])
        assert len(schedule) == 4
        assert schedule.num_checkpoints == 2
        assert schedule.initial_recovery == small_chain.initial_recovery


class TestSegmentDecomposition:
    def test_segments_of_chain_schedule(self, small_chain):
        schedule = Schedule.for_chain(small_chain, [1, 3])
        segments = schedule.segments()
        assert len(segments) == 2
        first, second = segments
        assert first.tasks == ("T1", "T2")
        assert first.work == pytest.approx(14.0)
        assert first.checkpoint_cost == pytest.approx(small_chain.checkpoint_costs[1])
        assert first.recovery_cost == pytest.approx(small_chain.initial_recovery)
        assert second.tasks == ("T3", "T4")
        assert second.recovery_cost == pytest.approx(small_chain.recovery_costs[1])
        assert second.checkpointed

    def test_unterminated_final_segment(self, small_chain):
        schedule = Schedule.for_chain(small_chain, [0])
        segments = schedule.segments()
        assert len(segments) == 2
        assert segments[-1].checkpointed is False
        assert segments[-1].checkpoint_cost == 0.0

    def test_no_checkpoints_single_segment(self, small_chain):
        schedule = Schedule.for_chain(small_chain, [])
        segments = schedule.segments()
        assert len(segments) == 1
        assert segments[0].work == pytest.approx(small_chain.total_work())

    def test_checkpoint_everywhere(self, small_chain):
        schedule = Schedule.for_chain(small_chain, range(4))
        segments = schedule.segments()
        assert len(segments) == 4
        assert all(len(s.tasks) == 1 for s in segments)


class TestExpectedMakespan:
    def test_matches_manual_sum(self, small_chain):
        schedule = Schedule.for_chain(small_chain, [1, 3])
        downtime, rate = 0.5, 0.02
        manual = expected_completion_time(
            14.0, small_chain.checkpoint_costs[1], downtime, small_chain.initial_recovery, rate
        ) + expected_completion_time(
            9.0, small_chain.checkpoint_costs[3], downtime, small_chain.recovery_costs[1], rate
        )
        assert schedule.expected_makespan(downtime, rate) == pytest.approx(manual)

    def test_module_level_wrapper(self, small_chain):
        schedule = Schedule.for_chain(small_chain, [3])
        assert expected_makespan(schedule, 0.1, 0.01) == pytest.approx(
            schedule.expected_makespan(0.1, 0.01)
        )

    def test_failure_free_time(self, small_chain):
        schedule = Schedule.for_chain(small_chain, [1, 3])
        expected = small_chain.total_work() + small_chain.checkpoint_costs[1] + small_chain.checkpoint_costs[3]
        assert schedule.failure_free_time() == pytest.approx(expected)

    def test_expected_exceeds_failure_free(self, small_chain):
        schedule = Schedule.for_chain(small_chain, [1, 3])
        assert schedule.expected_makespan(0.5, 0.05) > schedule.failure_free_time()

    def test_rejects_bad_parameters(self, small_chain):
        schedule = Schedule.for_chain(small_chain, [3])
        with pytest.raises(ValueError):
            schedule.expected_makespan(-1.0, 0.1)
        with pytest.raises(ValueError):
            schedule.expected_makespan(0.0, 0.0)


class TestScheduleWithFrontierModel:
    def _diamond(self):
        tasks = [
            Task("A", 2.0, checkpoint_cost=1.0, recovery_cost=1.0),
            Task("B", 3.0, checkpoint_cost=2.0, recovery_cost=2.0),
            Task("C", 5.0, checkpoint_cost=4.0, recovery_cost=4.0),
            Task("D", 1.0, checkpoint_cost=0.5, recovery_cost=0.5),
        ]
        deps = [("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")]
        return Workflow(tasks, deps)

    def test_frontier_cost_used_in_segments(self):
        wf = self._diamond()
        model = FrontierCheckpointCost(wf)
        order = ["A", "B", "C", "D"]
        plan = CheckpointPlan.from_positions(4, [1, 3])
        schedule = Schedule(wf, order, plan, checkpoint_model=model)
        segments = schedule.segments()
        # Checkpoint after B with no prior checkpoint saves A and B: cost 3.
        assert segments[0].checkpoint_cost == pytest.approx(3.0)
        # Recovery for the second segment restores the frontier at B: A and B.
        assert segments[1].recovery_cost == pytest.approx(3.0)

    def test_frontier_model_changes_makespan(self):
        wf = self._diamond()
        order = ["A", "B", "C", "D"]
        plan = CheckpointPlan.from_positions(4, [1, 3])
        base = Schedule(wf, order, plan).expected_makespan(0.1, 0.05)
        frontier = Schedule(
            wf, order, plan, checkpoint_model=FrontierCheckpointCost(wf)
        ).expected_makespan(0.1, 0.05)
        assert frontier > base


class TestScheduleDescription:
    def test_describe_lists_segments(self, small_chain):
        schedule = Schedule.for_chain(small_chain, [1, 3])
        text = schedule.describe()
        assert "segment 0" in text
        assert "T1, T2" in text

    def test_repr(self, small_chain):
        schedule = Schedule.for_chain(small_chain, [1])
        assert "checkpoints=1" in repr(schedule)
