"""Tests for the Monte-Carlo estimator."""


import numpy as np
import pytest

from repro.core.expected_time import expected_completion_time
from repro.core.schedule import Schedule, Segment
from repro.failures.distributions import WeibullFailure
from repro.failures.platform import Platform
from repro.failures.traces import generate_trace
from repro.simulation.monte_carlo import (
    MonteCarloEstimate,
    MonteCarloEstimator,
    estimate_expected_completion_time,
)
from repro.simulation.executor import SimulationResult
from repro.workflows.generators import uniform_random_chain


class TestMonteCarloEstimate:
    def test_from_results(self):
        results = [
            SimulationResult(makespan=m, num_failures=0, wasted_time=0.0,
                             useful_time=m, num_recovery_attempts=0)
            for m in (10.0, 12.0, 11.0, 13.0)
        ]
        estimate = MonteCarloEstimate.from_results(results)
        assert estimate.mean == pytest.approx(11.5)
        assert estimate.num_runs == 4
        assert estimate.ci95_low < estimate.mean < estimate.ci95_high

    def test_single_run_has_zero_sem(self):
        results = [
            SimulationResult(makespan=5.0, num_failures=1, wasted_time=1.0,
                             useful_time=4.0, num_recovery_attempts=1)
        ]
        estimate = MonteCarloEstimate.from_results(results)
        assert estimate.sem == 0.0
        assert estimate.ci95_low == estimate.ci95_high == 5.0

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            MonteCarloEstimate.from_results([])

    def test_contains_and_relative_error(self):
        results = [
            SimulationResult(makespan=m, num_failures=0, wasted_time=0.0,
                             useful_time=m, num_recovery_attempts=0)
            for m in np.linspace(9.0, 11.0, 50)
        ]
        estimate = MonteCarloEstimate.from_results(results)
        assert estimate.contains(10.0)
        assert not estimate.contains(100.0)
        assert estimate.relative_error(10.0) == pytest.approx(0.0, abs=0.05)

    def test_ci99_wider_than_ci95(self):
        results = [
            SimulationResult(makespan=m, num_failures=0, wasted_time=0.0,
                             useful_time=m, num_recovery_attempts=0)
            for m in np.linspace(9.0, 11.0, 50)
        ]
        estimate = MonteCarloEstimate.from_results(results)
        low99, high99 = estimate.ci99()
        assert low99 <= estimate.ci95_low
        assert high99 >= estimate.ci95_high

    def test_unsupported_level_rejected(self):
        results = [
            SimulationResult(makespan=1.0, num_failures=0, wasted_time=0.0,
                             useful_time=1.0, num_recovery_attempts=0)
        ]
        with pytest.raises(ValueError):
            MonteCarloEstimate.from_results(results).contains(1.0, level=0.5)


class TestMonteCarloEstimator:
    def test_estimates_prop1_for_single_segment(self, rng):
        estimate = estimate_expected_completion_time(
            10.0, 1.0, 0.5, 2.0, 0.05, num_runs=20000, rng=rng
        )
        analytic = expected_completion_time(10.0, 1.0, 0.5, 2.0, 0.05)
        assert estimate.relative_error(analytic) < 0.03
        assert estimate.contains(analytic, level=0.99)

    def test_estimates_schedule_makespan(self, rng):
        chain = uniform_random_chain(6, seed=41)
        schedule = Schedule.for_chain(chain, [1, 3, 5])
        estimator = MonteCarloEstimator(schedule, 0.02, 0.5)
        estimate = estimator.estimate(5000, rng=rng)
        analytic = schedule.expected_makespan(0.5, 0.02)
        assert estimate.relative_error(analytic) < 0.05

    def test_accepts_raw_segments(self, rng):
        segment = Segment(tasks=("T",), work=5.0, checkpoint_cost=0.5,
                          recovery_cost=0.5, checkpointed=True)
        estimator = MonteCarloEstimator([segment], 0.05, 0.0)
        estimate = estimator.estimate(500, rng=rng)
        assert estimate.mean > 5.0

    def test_requires_some_failure_model(self):
        segment = Segment(tasks=("T",), work=5.0, checkpoint_cost=0.0,
                          recovery_cost=0.0, checkpointed=False)
        with pytest.raises(ValueError):
            MonteCarloEstimator([segment])

    def test_rejects_empty_segment_list(self):
        with pytest.raises(ValueError):
            MonteCarloEstimator([], 0.1)

    def test_seeded_estimates_reproducible(self):
        chain = uniform_random_chain(4, seed=42)
        schedule = Schedule.for_chain(chain, [3])
        a = MonteCarloEstimator(schedule, 0.05, 0.1).estimate(200, seed=5)
        b = MonteCarloEstimator(schedule, 0.05, 0.1).estimate(200, seed=5)
        assert a.mean == b.mean

    def test_weibull_platform_model(self, rng):
        chain = uniform_random_chain(4, seed=43)
        schedule = Schedule.for_chain(chain, [1, 3])
        platform = Platform(
            num_processors=2, failure_law=WeibullFailure.from_mtbf(200.0, shape=0.7), downtime=0.5
        )
        estimator = MonteCarloEstimator(schedule, platform, 0.5)
        estimate = estimator.estimate(300, rng=rng)
        assert estimate.mean >= chain.total_work()

    def test_failure_model_factory(self, rng):
        chain = uniform_random_chain(3, seed=44)
        schedule = Schedule.for_chain(chain, [2])
        law = WeibullFailure.from_mtbf(500.0, shape=0.8)

        def factory(generator):
            return generate_trace(law, horizon=100_000.0, rng=generator)

        estimator = MonteCarloEstimator(schedule, failure_model_factory=factory, downtime=0.2)
        estimate = estimator.estimate(100, rng=rng)
        assert estimate.num_runs == 100
        assert estimate.mean >= chain.total_work()

    def test_rejects_non_positive_run_count(self, rng):
        chain = uniform_random_chain(3, seed=45)
        schedule = Schedule.for_chain(chain, [2])
        estimator = MonteCarloEstimator(schedule, 0.01, 0.0)
        with pytest.raises(ValueError):
            estimator.estimate(0)

    def test_run_once_with_log(self, rng):
        chain = uniform_random_chain(3, seed=46)
        schedule = Schedule.for_chain(chain, [0, 2])
        estimator = MonteCarloEstimator(schedule, 0.01, 0.0)
        result = estimator.run_once(rng, record_log=True)
        assert result.log is not None
        assert result.log.num_checkpoints == 2
