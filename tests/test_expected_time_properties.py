"""Property-based tests (hypothesis) for the Proposition 1 formula."""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.expected_time import (
    expected_completion_time,
    expected_lost_time,
    expected_recovery_time,
)

# Parameter strategies kept in ranges where exp() stays well away from overflow.
works = st.floats(min_value=0.0, max_value=200.0)
checkpoints = st.floats(min_value=0.0, max_value=50.0)
downtimes = st.floats(min_value=0.0, max_value=20.0)
recoveries = st.floats(min_value=0.0, max_value=50.0)
rates = st.floats(min_value=1e-6, max_value=0.5)


class TestProp1Properties:
    @given(work=works, ckpt=checkpoints, downtime=downtimes, recovery=recoveries, rate=rates)
    @settings(max_examples=200, deadline=None)
    def test_at_least_failure_free_time(self, work, ckpt, downtime, recovery, rate):
        assume(rate * (work + ckpt + recovery) < 500)
        value = expected_completion_time(work, ckpt, downtime, recovery, rate)
        assert value >= work + ckpt - 1e-9

    @given(work=works, ckpt=checkpoints, downtime=downtimes, recovery=recoveries, rate=rates)
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_work(self, work, ckpt, downtime, recovery, rate):
        assume(rate * (work + ckpt + recovery + 1.0) < 500)
        smaller = expected_completion_time(work, ckpt, downtime, recovery, rate)
        larger = expected_completion_time(work + 1.0, ckpt, downtime, recovery, rate)
        assert larger >= smaller

    @given(work=works, ckpt=checkpoints, downtime=downtimes, recovery=recoveries, rate=rates)
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_rate(self, work, ckpt, downtime, recovery, rate):
        assume(work + ckpt > 0)
        assume(2 * rate * (work + ckpt + recovery) < 500)
        lower = expected_completion_time(work, ckpt, downtime, recovery, rate)
        higher = expected_completion_time(work, ckpt, downtime, recovery, rate * 2.0)
        assert higher >= lower - 1e-9

    @given(work=works, ckpt=checkpoints, downtime=downtimes, recovery=recoveries, rate=rates)
    @settings(max_examples=200, deadline=None)
    def test_recursion_identity(self, work, ckpt, downtime, recovery, rate):
        """Equation 3 of the paper holds for all parameter values."""
        assume(work + ckpt > 1e-9)
        assume(rate * (work + ckpt + recovery) < 500)
        lhs = expected_completion_time(work, ckpt, downtime, recovery, rate)
        rhs = (work + ckpt) + math.expm1(rate * (work + ckpt)) * (
            expected_lost_time(work, ckpt, rate)
            + expected_recovery_time(downtime, recovery, rate)
        )
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)

    @given(work=works, ckpt=checkpoints, rate=rates)
    @settings(max_examples=200, deadline=None)
    def test_splitting_work_with_free_checkpoint_helps(self, work, ckpt, rate):
        """With zero-cost checkpoints, two halves are never worse than one block.

        This is the convexity fact exploited throughout the paper: splitting a
        segment in two (committing progress in the middle for free) can only
        reduce the expectation.
        """
        assume(work > 1e-6)
        assume(rate * (work + ckpt) < 400)
        whole = expected_completion_time(work, 0.0, 0.0, 0.0, rate)
        halves = 2.0 * expected_completion_time(work / 2.0, 0.0, 0.0, 0.0, rate)
        assert halves <= whole + 1e-9

    @given(work=works, ckpt=checkpoints, downtime=downtimes, recovery=recoveries, rate=rates)
    @settings(max_examples=200, deadline=None)
    def test_lost_time_bounds(self, work, ckpt, downtime, recovery, rate):
        assume(work + ckpt > 1e-9)
        assume(rate * (work + ckpt) < 500)
        lost = expected_lost_time(work, ckpt, rate)
        assert 0.0 <= lost <= min(work + ckpt, 1.0 / rate) + 1e-9

    @given(downtime=downtimes, recovery=recoveries, rate=rates)
    @settings(max_examples=200, deadline=None)
    def test_recovery_time_at_least_d_plus_r(self, downtime, recovery, rate):
        assume(rate * recovery < 500)
        value = expected_recovery_time(downtime, recovery, rate)
        assert value >= downtime + recovery - 1e-9
