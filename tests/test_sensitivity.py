"""Tests for the parameter-sensitivity analysis."""

import pytest

from repro.analysis.sensitivity import placement_penalty, rate_sensitivity_sweep
from repro.workflows.generators import uniform_random_chain


@pytest.fixture
def chain():
    return uniform_random_chain(20, work_range=(2.0, 10.0), checkpoint_range=(0.3, 1.5), seed=310)


class TestPlacementPenalty:
    def test_correct_estimate_has_zero_penalty(self, chain):
        result = placement_penalty(chain, true_rate=0.02, assumed_rate=0.02, downtime=0.5)
        assert result.penalty == pytest.approx(0.0, abs=1e-12)
        assert result.assumed_checkpoints == result.optimal_checkpoints

    def test_penalty_non_negative(self, chain):
        for ratio in (0.1, 0.5, 2.0, 10.0):
            result = placement_penalty(chain, 0.02, 0.02 * ratio, 0.5)
            assert result.penalty >= 0.0

    def test_underestimating_rate_costs_more_than_overestimating(self, chain):
        under = placement_penalty(chain, 0.05, 0.005, 0.5)   # assumed 10x too low
        over = placement_penalty(chain, 0.05, 0.5, 0.5)       # assumed 10x too high
        assert under.penalty > over.penalty

    def test_underestimation_plans_fewer_checkpoints(self, chain):
        result = placement_penalty(chain, 0.05, 0.005, 0.5)
        assert result.assumed_checkpoints < result.optimal_checkpoints

    def test_assumed_plan_value_at_least_optimal(self, chain):
        result = placement_penalty(chain, 0.03, 0.3, 0.5)
        assert result.expected_with_assumed_plan >= result.expected_optimal - 1e-9

    def test_distinct_true_downtime(self, chain):
        result = placement_penalty(
            chain, true_rate=0.02, assumed_rate=0.02, downtime=0.0, true_downtime=5.0
        )
        # Same rate, so the placement is planned without downtime but evaluated
        # with it: the penalty measures only the placement difference, which
        # may be zero or small but never negative.
        assert result.penalty >= 0.0

    def test_rejects_invalid_rates(self, chain):
        with pytest.raises(ValueError):
            placement_penalty(chain, 0.0, 0.1, 0.0)
        with pytest.raises(ValueError):
            placement_penalty(chain, 0.1, -0.1, 0.0)


class TestRateSensitivitySweep:
    def test_table_structure(self, chain):
        table = rate_sensitivity_sweep(chain, true_rate=0.02, downtime=0.5)
        assert len(table) == 7
        assert "penalty_pct" in table.columns

    def test_penalty_zero_at_ratio_one(self, chain):
        table = rate_sensitivity_sweep(chain, 0.02, 0.5, ratios=(0.5, 1.0, 2.0))
        row = next(r for r in table.rows if r["assumed_over_true"] == 1.0)
        assert row["penalty_pct"] == pytest.approx(0.0, abs=1e-9)

    def test_penalties_grow_away_from_one(self, chain):
        table = rate_sensitivity_sweep(chain, 0.05, 0.5, ratios=(0.1, 0.5, 1.0, 2.0, 10.0))
        by_ratio = {row["assumed_over_true"]: row["penalty_pct"] for row in table.rows}
        assert by_ratio[0.1] >= by_ratio[0.5] - 1e-9
        assert by_ratio[10.0] >= by_ratio[2.0] - 1e-9

    def test_checkpoint_counts_monotone_in_assumed_rate(self, chain):
        table = rate_sensitivity_sweep(chain, 0.02, 0.5, ratios=(0.1, 1.0, 10.0))
        counts = [row["assumed_checkpoints"] for row in table.rows]
        assert counts == sorted(counts)

    def test_rejects_non_positive_ratio(self, chain):
        with pytest.raises(ValueError):
            rate_sensitivity_sweep(chain, 0.02, 0.5, ratios=(0.0, 1.0))
