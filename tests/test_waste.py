"""Tests for the waste decomposition analysis."""

import numpy as np
import pytest

from repro.analysis.waste import simulated_waste_breakdown, waste_breakdown
from repro.core.chain_dp import optimal_chain_checkpoints
from repro.core.schedule import Schedule
from repro.simulation.executor import simulate_schedule
from repro.workflows.generators import uniform_random_chain


class TestWasteBreakdown:
    def test_categories_sum_to_expected_makespan(self):
        chain = uniform_random_chain(8, seed=101)
        schedule = Schedule.for_chain(chain, [3, 7])
        breakdown = waste_breakdown(schedule, 0.5, 0.02)
        assert breakdown.expected_makespan == pytest.approx(
            breakdown.useful_work + breakdown.checkpoint_overhead + breakdown.failure_waste
        )
        assert breakdown.expected_makespan == pytest.approx(
            schedule.expected_makespan(0.5, 0.02)
        )

    def test_useful_work_is_total_work(self):
        chain = uniform_random_chain(6, seed=102)
        schedule = Schedule.for_chain(chain, [5])
        breakdown = waste_breakdown(schedule, 0.0, 0.01)
        assert breakdown.useful_work == pytest.approx(chain.total_work())

    def test_checkpoint_overhead_counts_each_checkpoint_once(self):
        chain = uniform_random_chain(5, seed=103)
        schedule = Schedule.for_chain(chain, [1, 4])
        breakdown = waste_breakdown(schedule, 0.0, 0.001)
        assert breakdown.checkpoint_overhead == pytest.approx(
            chain.checkpoint_costs[1] + chain.checkpoint_costs[4]
        )

    def test_fractions_sum_to_one(self):
        chain = uniform_random_chain(5, seed=104)
        schedule = Schedule.for_chain(chain, [2, 4])
        breakdown = waste_breakdown(schedule, 1.0, 0.05)
        assert breakdown.efficiency + breakdown.overhead_fraction + breakdown.waste_fraction == (
            pytest.approx(1.0)
        )

    def test_waste_grows_with_failure_rate(self):
        chain = uniform_random_chain(10, seed=105)
        schedule = Schedule.for_chain(chain, [4, 9])
        low = waste_breakdown(schedule, 0.5, 1e-4)
        high = waste_breakdown(schedule, 0.5, 5e-2)
        assert high.failure_waste > low.failure_waste
        assert high.efficiency < low.efficiency

    def test_negligible_rate_means_negligible_waste(self):
        chain = uniform_random_chain(5, seed=106)
        schedule = Schedule.for_chain(chain, [4])
        breakdown = waste_breakdown(schedule, 0.5, 1e-10)
        assert breakdown.waste_fraction < 1e-6

    def test_describe_mentions_percentages(self):
        chain = uniform_random_chain(4, seed=107)
        schedule = Schedule.for_chain(chain, [3])
        text = waste_breakdown(schedule, 0.1, 0.01).describe()
        assert "%" in text

    def test_optimal_placement_minimises_overhead_plus_waste(self):
        chain = uniform_random_chain(12, seed=108)
        downtime, rate = 0.5, 0.02
        optimal = optimal_chain_checkpoints(chain, downtime, rate)
        best = waste_breakdown(optimal.to_schedule(), downtime, rate)
        everywhere = waste_breakdown(
            Schedule.for_chain(chain, range(chain.n)), downtime, rate
        )
        assert (best.checkpoint_overhead + best.failure_waste) <= (
            everywhere.checkpoint_overhead + everywhere.failure_waste
        ) + 1e-9

    def test_rejects_invalid_parameters(self):
        chain = uniform_random_chain(3, seed=109)
        schedule = Schedule.for_chain(chain, [2])
        with pytest.raises(ValueError):
            waste_breakdown(schedule, -1.0, 0.01)
        with pytest.raises(ValueError):
            waste_breakdown(schedule, 0.0, 0.0)


class TestSimulatedWasteBreakdown:
    def test_agrees_with_analytic_in_expectation(self):
        rng = np.random.default_rng(110)
        chain = uniform_random_chain(8, seed=110)
        schedule = Schedule.for_chain(chain, [3, 7])
        downtime, rate = 0.5, 0.03
        analytic = waste_breakdown(schedule, downtime, rate)
        results = [simulate_schedule(schedule, rate, downtime, rng=rng) for _ in range(4000)]
        simulated = simulated_waste_breakdown(schedule, results)
        assert simulated.useful_work == pytest.approx(analytic.useful_work)
        assert simulated.checkpoint_overhead == pytest.approx(analytic.checkpoint_overhead)
        assert simulated.failure_waste == pytest.approx(analytic.failure_waste, rel=0.1)
        assert simulated.expected_makespan == pytest.approx(analytic.expected_makespan, rel=0.05)

    def test_requires_at_least_one_result(self):
        chain = uniform_random_chain(3, seed=111)
        schedule = Schedule.for_chain(chain, [2])
        with pytest.raises(ValueError):
            simulated_waste_breakdown(schedule, [])
