"""Tests for the Proposition 1 closed form and related formulas."""

import math

import pytest

from repro.core.expected_time import (
    bouguerra_expected_time,
    daly_first_order_period,
    daly_higher_order_period,
    expected_completion_time,
    expected_lost_time,
    expected_recovery_time,
    expected_segments_time,
    young_period,
)


class TestProposition1ClosedForm:
    def test_matches_paper_formula(self):
        work, ckpt, downtime, recovery, rate = 10.0, 1.0, 0.5, 2.0, 0.05
        expected = (
            math.exp(rate * recovery)
            * (1.0 / rate + downtime)
            * (math.exp(rate * (work + ckpt)) - 1.0)
        )
        assert expected_completion_time(work, ckpt, downtime, recovery, rate) == pytest.approx(
            expected
        )

    def test_reduces_to_work_plus_checkpoint_for_tiny_rate(self):
        # As lambda -> 0, E[T] -> W + C.
        value = expected_completion_time(10.0, 1.0, 5.0, 3.0, 1e-12)
        assert value == pytest.approx(11.0, rel=1e-6)

    def test_zero_work_and_checkpoint_is_zero(self):
        assert expected_completion_time(0.0, 0.0, 1.0, 1.0, 0.1) == 0.0

    def test_exceeds_failure_free_time(self):
        value = expected_completion_time(10.0, 1.0, 0.0, 0.0, 0.01)
        assert value > 11.0

    def test_increases_with_work(self):
        base = expected_completion_time(10.0, 1.0, 0.5, 1.0, 0.05)
        more = expected_completion_time(15.0, 1.0, 0.5, 1.0, 0.05)
        assert more > base

    def test_increases_with_checkpoint_cost(self):
        base = expected_completion_time(10.0, 1.0, 0.5, 1.0, 0.05)
        more = expected_completion_time(10.0, 2.0, 0.5, 1.0, 0.05)
        assert more > base

    def test_increases_with_recovery_cost(self):
        base = expected_completion_time(10.0, 1.0, 0.5, 1.0, 0.05)
        more = expected_completion_time(10.0, 1.0, 0.5, 4.0, 0.05)
        assert more > base

    def test_increases_with_downtime(self):
        base = expected_completion_time(10.0, 1.0, 0.0, 1.0, 0.05)
        more = expected_completion_time(10.0, 1.0, 2.0, 1.0, 0.05)
        assert more > base

    def test_increases_with_rate(self):
        base = expected_completion_time(10.0, 1.0, 0.5, 1.0, 0.01)
        more = expected_completion_time(10.0, 1.0, 0.5, 1.0, 0.1)
        assert more > base

    def test_satisfies_recursion_equation3(self):
        # E[T] = W + C + (e^{lambda(W+C)} - 1)(E[T_lost] + E[T_rec])  (Equation 3)
        work, ckpt, downtime, recovery, rate = 7.0, 2.0, 1.5, 3.0, 0.08
        lhs = expected_completion_time(work, ckpt, downtime, recovery, rate)
        rhs = (work + ckpt) + math.expm1(rate * (work + ckpt)) * (
            expected_lost_time(work, ckpt, rate)
            + expected_recovery_time(downtime, recovery, rate)
        )
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_overflow_raises_with_helpful_message(self):
        with pytest.raises(OverflowError, match="unit mismatch"):
            expected_completion_time(1e6, 0.0, 0.0, 0.0, 1.0)

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            expected_completion_time(-1.0, 0.0, 0.0, 0.0, 0.1)
        with pytest.raises(ValueError):
            expected_completion_time(1.0, -1.0, 0.0, 0.0, 0.1)
        with pytest.raises(ValueError):
            expected_completion_time(1.0, 0.0, -1.0, 0.0, 0.1)
        with pytest.raises(ValueError):
            expected_completion_time(1.0, 0.0, 0.0, -1.0, 0.1)

    def test_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            expected_completion_time(1.0, 0.0, 0.0, 0.0, 0.0)


class TestExpectedLostTime:
    def test_equation4(self):
        work, ckpt, rate = 10.0, 1.0, 0.05
        expected = 1.0 / rate - (work + ckpt) / (math.exp(rate * (work + ckpt)) - 1.0)
        assert expected_lost_time(work, ckpt, rate) == pytest.approx(expected)

    def test_bounded_by_segment_length(self):
        # The lost time is conditioned on failing within W + C, so it is below W + C.
        assert expected_lost_time(10.0, 1.0, 0.05) < 11.0

    def test_bounded_by_mtbf(self):
        assert expected_lost_time(10.0, 1.0, 0.05) < 1.0 / 0.05

    def test_small_segment_loses_about_half(self):
        # For lambda*(W+C) << 1, the failure time is nearly uniform on the segment.
        value = expected_lost_time(1.0, 0.0, 1e-6)
        assert value == pytest.approx(0.5, rel=1e-3)

    def test_zero_segment(self):
        assert expected_lost_time(0.0, 0.0, 0.1) == 0.0


class TestExpectedRecoveryTime:
    def test_equation5(self):
        downtime, recovery, rate = 2.0, 5.0, 0.03
        expected = downtime * math.exp(rate * recovery) + math.expm1(rate * recovery) / rate
        assert expected_recovery_time(downtime, recovery, rate) == pytest.approx(expected)

    def test_zero_recovery_gives_downtime(self):
        assert expected_recovery_time(3.0, 0.0, 0.1) == pytest.approx(3.0)

    def test_exceeds_downtime_plus_recovery(self):
        assert expected_recovery_time(2.0, 5.0, 0.1) > 7.0


class TestExpectedSegmentsTime:
    def test_sums_segments(self):
        segments = [(10.0, 1.0, 0.0), (5.0, 0.5, 1.0)]
        total = expected_segments_time(segments, downtime=0.5, rate=0.02)
        manual = expected_completion_time(10.0, 1.0, 0.5, 0.0, 0.02) + expected_completion_time(
            5.0, 0.5, 0.5, 1.0, 0.02
        )
        assert total == pytest.approx(manual)

    def test_empty_sequence_is_zero(self):
        assert expected_segments_time([], 0.5, 0.02) == 0.0

    def test_error_mentions_segment_index(self):
        with pytest.raises(ValueError, match="segment 1"):
            expected_segments_time([(1.0, 0.0, 0.0), (-1.0, 0.0, 0.0)], 0.0, 0.1)


class TestBouguerraFormula:
    def test_coincides_with_prop1_when_recovery_is_zero(self):
        exact = expected_completion_time(10.0, 1.0, 0.5, 0.0, 0.05)
        inexact = bouguerra_expected_time(10.0, 1.0, 0.5, 0.0, 0.05)
        assert inexact == pytest.approx(exact)

    def test_overestimates_when_recovery_positive(self):
        exact = expected_completion_time(10.0, 1.0, 0.5, 3.0, 0.05)
        inexact = bouguerra_expected_time(10.0, 1.0, 0.5, 3.0, 0.05)
        assert inexact > exact

    def test_zero_everything_is_zero(self):
        assert bouguerra_expected_time(0.0, 0.0, 1.0, 0.0, 0.1) == 0.0


class TestPeriods:
    def test_young_formula(self):
        assert young_period(1.0, 0.005) == pytest.approx(math.sqrt(2.0 / 0.005))

    def test_daly_first_order_equals_young(self):
        assert daly_first_order_period(2.0, 0.01) == young_period(2.0, 0.01)

    def test_daly_higher_order_close_to_young_for_small_c(self):
        young = young_period(0.01, 1e-5)
        daly = daly_higher_order_period(0.01, 1e-5)
        assert daly == pytest.approx(young, rel=0.02)

    def test_daly_falls_back_to_mtbf_for_huge_checkpoint(self):
        assert daly_higher_order_period(1000.0, 0.01) == pytest.approx(100.0)

    def test_daly_period_positive(self):
        assert daly_higher_order_period(10.0, 0.01) > 0.0

    def test_periods_reject_non_positive_inputs(self):
        with pytest.raises(ValueError):
            young_period(0.0, 0.1)
        with pytest.raises(ValueError):
            young_period(1.0, 0.0)
