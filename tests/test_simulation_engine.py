"""Tests for the failure sources feeding the simulator."""

import math

import numpy as np
import pytest

from repro.failures.distributions import ExponentialFailure, WeibullFailure
from repro.failures.platform import Platform
from repro.failures.traces import FailureEvent, FailureTrace
from repro.simulation.engine import (
    PoissonFailureSource,
    RenewalPlatformFailureSource,
    TraceFailureSource,
    failure_source_for,
)


class TestPoissonFailureSource:
    def test_mean_delay_matches_rate(self, rng):
        source = PoissonFailureSource(rate=0.1, rng=rng)
        delays = [source.time_to_next_failure(0.0) for _ in range(20000)]
        assert np.mean(delays) == pytest.approx(10.0, rel=0.05)

    def test_register_failure_is_noop(self, rng):
        source = PoissonFailureSource(rate=0.1, rng=rng)
        source.register_failure(5.0)
        assert source.time_to_next_failure(5.0) >= 0.0

    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            PoissonFailureSource(rate=0.0)


class TestRenewalPlatformFailureSource:
    def test_delays_non_negative(self, rng):
        platform = Platform(num_processors=4, failure_law=WeibullFailure(shape=0.7, scale=50.0))
        source = RenewalPlatformFailureSource(platform, rng)
        t = 0.0
        for _ in range(100):
            delay = source.time_to_next_failure(t)
            assert delay >= 0.0
            t += delay
            source.register_failure(t)

    def test_exponential_platform_statistics(self, rng):
        # For an exponential law the renewal superposition must look like a
        # Poisson process of rate p * lambda_proc.
        platform = Platform(num_processors=5, failure_law=ExponentialFailure(rate=0.02))
        source = RenewalPlatformFailureSource(platform, rng)
        t = 0.0
        gaps = []
        for _ in range(5000):
            delay = source.time_to_next_failure(t)
            gaps.append(delay)
            t += delay
            source.register_failure(t)
        assert np.mean(gaps) == pytest.approx(1.0 / 0.1, rel=0.1)

    def test_reset_redraws_state(self, rng):
        platform = Platform(num_processors=2, failure_law=WeibullFailure(shape=0.9, scale=30.0))
        source = RenewalPlatformFailureSource(platform, rng)
        first = source.time_to_next_failure(0.0)
        source.reset()
        second = source.time_to_next_failure(0.0)
        assert first != second  # astronomically unlikely to collide

    def test_rejuvenate_all_flag(self, rng):
        platform = Platform(num_processors=3, failure_law=WeibullFailure(shape=0.7, scale=30.0))
        source = RenewalPlatformFailureSource(platform, rng, rejuvenate_all_on_failure=True)
        t = source.time_to_next_failure(0.0)
        source.register_failure(t)
        assert all(nf > t for nf in source._next_failures)


class TestTraceFailureSource:
    def _trace(self):
        events = tuple(FailureEvent(t) for t in (5.0, 12.0, 30.0))
        return FailureTrace(events=events, horizon=100.0)

    def test_replays_trace_in_order(self):
        source = TraceFailureSource(self._trace())
        assert source.time_to_next_failure(0.0) == pytest.approx(5.0)
        source.register_failure(5.0)
        assert source.time_to_next_failure(5.0) == pytest.approx(7.0)

    def test_exhausted_trace_returns_inf(self):
        source = TraceFailureSource(self._trace())
        assert source.time_to_next_failure(50.0) == math.inf

    def test_reset_restarts_cursor(self):
        source = TraceFailureSource(self._trace())
        source.register_failure(12.0)
        source.reset()
        assert source.time_to_next_failure(0.0) == pytest.approx(5.0)

    def test_deterministic_replay(self):
        source = TraceFailureSource(self._trace())
        a = [source.time_to_next_failure(t) for t in (0.0, 6.0, 13.0)]
        source.reset()
        b = [source.time_to_next_failure(t) for t in (0.0, 6.0, 13.0)]
        assert a == b


class TestFailureSourceFor:
    def test_float_becomes_poisson(self, rng):
        source = failure_source_for(0.05, rng)
        assert isinstance(source, PoissonFailureSource)
        assert source.rate == 0.05

    def test_exponential_law_becomes_poisson(self, rng):
        source = failure_source_for(ExponentialFailure(rate=0.1), rng)
        assert isinstance(source, PoissonFailureSource)

    def test_weibull_law_becomes_renewal(self, rng):
        source = failure_source_for(WeibullFailure(shape=0.7, scale=10.0), rng)
        assert isinstance(source, RenewalPlatformFailureSource)

    def test_exponential_platform_becomes_poisson(self, rng):
        platform = Platform(num_processors=10, failure_law=ExponentialFailure(rate=0.01))
        source = failure_source_for(platform, rng)
        assert isinstance(source, PoissonFailureSource)
        assert source.rate == pytest.approx(0.1)

    def test_weibull_platform_becomes_renewal(self, rng):
        platform = Platform(num_processors=4, failure_law=WeibullFailure(shape=0.7, scale=10.0))
        source = failure_source_for(platform, rng)
        assert isinstance(source, RenewalPlatformFailureSource)

    def test_trace_becomes_trace_source(self, rng):
        trace = FailureTrace(events=(FailureEvent(1.0),), horizon=10.0)
        assert isinstance(failure_source_for(trace, rng), TraceFailureSource)

    def test_existing_source_passthrough(self, rng):
        source = PoissonFailureSource(0.1, rng)
        assert failure_source_for(source, rng) is source

    def test_bool_rejected(self, rng):
        with pytest.raises(TypeError):
            failure_source_for(True, rng)

    def test_unknown_type_rejected(self, rng):
        with pytest.raises(TypeError):
            failure_source_for("not a model", rng)
