"""Tests for the parallel campaign runtime (backends, cache, scenarios).

The load-bearing guarantee is backend equivalence: for a given seed, the
chunked execution path produces bit-identical results whether it runs
serially, on 2 workers, or on 4 workers, and a warm disk cache replays the
same numbers without simulating.
"""

import json

import numpy as np
import pytest

from repro.core.schedule import Schedule
from repro.experiments.registry import run_experiment
from repro.experiments.sweep import map_sweep, parameter_grid
from repro.failures.distributions import ExponentialFailure, WeibullFailure
from repro.runtime import (
    ChainSpec,
    FailureSpec,
    ProcessPoolBackend,
    ResultCache,
    ScenarioSpec,
    SerialBackend,
    expand_scenarios,
    plan_chunks,
    resolve_backend,
    run_scenarios,
    scenarios_table,
    spawn_chunk_seeds,
    stable_hash,
)
from repro.simulation.campaign import CampaignRunner
from repro.simulation.monte_carlo import MonteCarloEstimator
from repro.workflows.generators import uniform_random_chain


@pytest.fixture
def schedule():
    chain = uniform_random_chain(6, seed=77)
    return Schedule.for_chain(chain, [2, 5])


@pytest.fixture
def estimator(schedule):
    return MonteCarloEstimator(schedule, 0.05, 0.5)


def _double(x: float) -> float:
    """Module-level so process pools can pickle it."""
    return 2.0 * x


def _combine(rate: float, n: int) -> str:
    return f"{rate}:{n}"


class TestChunking:
    def test_plan_is_deterministic_and_complete(self):
        plan = plan_chunks(1000, 256)
        assert sum(plan.sizes) == 1000
        assert plan.sizes == (256, 256, 256, 232)
        assert plan == plan_chunks(1000, 256)

    def test_plan_default_chunk_size(self):
        plan = plan_chunks(10)
        assert plan.sizes == (10,)

    def test_plan_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            plan_chunks(0)
        with pytest.raises(ValueError):
            plan_chunks(10, 0)

    def test_seeds_are_independent_and_reproducible(self):
        seeds_a = spawn_chunk_seeds(42, 4)
        seeds_b = spawn_chunk_seeds(42, 4)
        states_a = [s.generate_state(2).tolist() for s in seeds_a]
        states_b = [s.generate_state(2).tolist() for s in seeds_b]
        assert states_a == states_b
        assert len({tuple(s) for s in states_a}) == 4


class TestStableHash:
    def test_stable_across_calls_and_key_order(self):
        assert stable_hash({"a": 1, "b": 2.5}) == stable_hash({"b": 2.5, "a": 1})

    def test_distinguishes_values_and_types(self):
        assert stable_hash({"x": 1.0}) != stable_hash({"x": 2.0})
        law_a = WeibullFailure.from_mtbf(100.0, shape=0.7)
        law_b = WeibullFailure.from_mtbf(100.0, shape=0.9)
        assert stable_hash(law_a) != stable_hash(law_b)

    def test_distinguishes_dataclass_types_with_same_fields(self):
        # Two laws that coincidentally share field values must not collide.
        assert stable_hash(ExponentialFailure(rate=0.5)) != stable_hash({"rate": 0.5})

    def test_handles_numpy_and_specials(self):
        assert stable_hash(np.float64(1.5)) == stable_hash(1.5)
        assert stable_hash(float("inf")) != stable_hash(float("nan"))

    def test_rejects_unhashable_objects(self):
        with pytest.raises(TypeError):
            stable_hash(lambda: None)


class TestResultCache:
    def test_roundtrip_with_arrays(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for({"kind": "test", "x": 1})
        samples = np.linspace(0.0, 1.0, 17)
        cache.put(key, {"note": "hello"}, {"samples": samples})
        meta, arrays = cache.get(key)
        assert meta["note"] == "hello"
        np.testing.assert_array_equal(arrays["samples"], samples)

    def test_miss_and_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("0" * 32) is None
        assert len(cache) == 0
        key = cache.key_for({"x": 2})
        cache.put(key, {"v": 1})
        assert len(cache) == 1
        assert key in cache
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_torn_entry_counts_as_miss(self, tmp_path):
        from repro.runtime.cache import CACHE_VERSION

        cache = ResultCache(tmp_path)
        key = cache.key_for({"x": 3})
        cache.put(key, {"v": 1})
        meta_path = (
            tmp_path / f"v{CACHE_VERSION}" / "results" / key[:2] / f"{key}.json"
        )
        meta_path.write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None

    def test_readonly_cache_never_writes(self, tmp_path):
        cache = ResultCache(tmp_path, readonly=True)
        key = cache.key_for({"x": 4})
        assert cache.put(key, {"v": 1}) is None
        assert cache.get(key) is None

    def test_namespaces_are_isolated(self, tmp_path):
        a = ResultCache(tmp_path, namespace="a")
        b = a.with_namespace("b")
        key = a.key_for({"x": 5})
        a.put(key, {"v": 1})
        assert a.get(key) is not None
        assert b.get(key) is None

    def test_env_var_overrides_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        cache = ResultCache()
        assert cache.root == tmp_path / "custom"


class TestBackends:
    def test_resolve_backend_spellings(self):
        assert isinstance(resolve_backend(None), SerialBackend)
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend(1), SerialBackend)
        pool = resolve_backend(3)
        assert isinstance(pool, ProcessPoolBackend)
        assert pool.num_workers == 3
        assert resolve_backend(pool) is pool
        with pytest.raises(ValueError):
            resolve_backend("threads")
        with pytest.raises(TypeError):
            resolve_backend(True)

    def test_serial_map_preserves_order(self):
        assert SerialBackend().map(_double, [1.0, 2.0, 3.0]) == [2.0, 4.0, 6.0]

    def test_pool_map_preserves_order(self):
        with ProcessPoolBackend(2) as pool:
            assert pool.map(_double, list(map(float, range(8)))) == [
                2.0 * i for i in range(8)
            ]

    def test_pool_map_empty(self):
        with ProcessPoolBackend(2) as pool:
            assert pool.map(_double, []) == []


class TestBackendEquivalence:
    """Monte-Carlo results are identical for the same seed on any backend."""

    def test_estimates_identical_serial_vs_2_vs_4_workers(self, estimator):
        serial = estimator.estimate(120, seed=9, backend=SerialBackend(), chunk_size=20)
        with ProcessPoolBackend(2) as two:
            workers2 = estimator.estimate(120, seed=9, backend=two, chunk_size=20)
        with ProcessPoolBackend(4) as four:
            workers4 = estimator.estimate(120, seed=9, backend=four, chunk_size=20)
        assert serial == workers2
        assert serial == workers4

    def test_campaign_identical_serial_vs_pool(self, schedule):
        chain = uniform_random_chain(6, seed=77)
        schedules = {
            "optimal": schedule,
            "all": Schedule.for_chain(chain, range(chain.n)),
        }
        runner = CampaignRunner(
            schedules, WeibullFailure.from_mtbf(80.0, shape=0.7), downtime=0.5
        )
        serial = runner.run(40, seed=3, backend=SerialBackend(), chunk_size=10)
        with ProcessPoolBackend(2) as pool:
            parallel = runner.run(40, seed=3, backend=pool, chunk_size=10)
        assert serial.makespans == parallel.makespans

    def test_worker_count_does_not_leak_into_chunking(self, estimator):
        # Same seed, different chunk size => different streams (documented);
        # same chunk size on any backend => same streams.
        a = estimator.estimate(60, seed=1, backend=SerialBackend(), chunk_size=15)
        b = estimator.estimate(60, seed=1, backend=SerialBackend(), chunk_size=30)
        assert a != b

    def test_serial_legacy_path_unchanged_by_runtime_kwargs(self, estimator):
        # backend=None, cache=None must keep consuming one rng stream.
        legacy_a = estimator.estimate(80, seed=5)
        legacy_b = estimator.estimate(80, seed=5)
        assert legacy_a == legacy_b

    def test_chunked_path_rejects_live_rng(self, estimator):
        with pytest.raises(ValueError, match="seed"):
            estimator.estimate(
                50, rng=np.random.default_rng(0), backend=SerialBackend()
            )


class TestCachedExecution:
    def test_warm_cache_replays_estimate_bit_for_bit(self, estimator, tmp_path):
        cache = ResultCache(tmp_path)
        cold = estimator.estimate(90, seed=4, cache=cache, chunk_size=30)
        warm = estimator.estimate(90, seed=4, cache=cache, chunk_size=30)
        assert cold == warm
        store = cache.with_namespace("monte_carlo")
        assert store.hits >= 0  # namespace views have their own counters
        # And the cached value matches a fresh chunked run without a cache.
        fresh = estimator.estimate(90, seed=4, backend=SerialBackend(), chunk_size=30)
        assert fresh == cold

    def test_cache_key_sensitive_to_parameters(self, schedule, tmp_path):
        cache = ResultCache(tmp_path)
        est_a = MonteCarloEstimator(schedule, 0.05, 0.5)
        est_b = MonteCarloEstimator(schedule, 0.07, 0.5)
        est_a.estimate(40, seed=4, cache=cache, chunk_size=20)
        est_b.estimate(40, seed=4, cache=cache, chunk_size=20)
        assert len(cache.with_namespace("monte_carlo")) == 2

    def test_cache_requires_seed(self, estimator, tmp_path):
        with pytest.raises(ValueError, match="seed"):
            estimator.estimate(50, cache=ResultCache(tmp_path))

    def test_cache_rejects_factory_models(self, schedule, tmp_path):
        def factory(rng):
            return 0.05

        estimator = MonteCarloEstimator(
            schedule, failure_model_factory=factory, downtime=0.0
        )
        with pytest.raises(ValueError, match="factory"):
            estimator.estimate(50, seed=1, cache=ResultCache(tmp_path))

    def test_campaign_warm_cache_replays(self, schedule, tmp_path):
        runner = CampaignRunner(
            {"optimal": schedule}, ExponentialFailure(rate=0.02), downtime=0.5
        )
        cache = ResultCache(tmp_path)
        cold = runner.run(30, seed=8, cache=cache, chunk_size=10)
        warm = runner.run(30, seed=8, cache=cache, chunk_size=10)
        assert cold.makespans == warm.makespans

    def test_campaign_rejects_explicit_traces_with_backend(self, schedule):
        runner = CampaignRunner(
            {"optimal": schedule}, ExponentialFailure(rate=0.02), downtime=0.5
        )
        from repro.failures.traces import FailureTrace

        with pytest.raises(ValueError, match="traces"):
            runner.run(
                3,
                traces=[FailureTrace(events=(), horizon=1e9)],
                backend=SerialBackend(),
            )


class TestScenarioSpec:
    @pytest.fixture
    def spec(self):
        return ScenarioSpec(
            name="demo",
            chain=ChainSpec(n=8, seed=42),
            failure=FailureSpec(kind="weibull", mtbf=80.0, shape=0.7),
            strategies=("optimal_dp", "checkpoint_all", "checkpoint_none"),
            num_runs=30,
            downtime=0.5,
            seed=9,
        )

    def test_json_roundtrip(self, spec):
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert json.loads(spec.to_json())["failure"]["kind"] == "weibull"

    def test_from_dict_without_strategies_uses_default(self):
        spec = ScenarioSpec.from_dict({
            "name": "minimal",
            "chain": {"n": 4, "seed": 1},
            "failure": {"kind": "exponential", "mtbf": 50.0},
        })
        assert spec.strategies == ScenarioSpec.__dataclass_fields__["strategies"].default

    def test_cache_key_excludes_name(self, spec):
        import dataclasses

        renamed = dataclasses.replace(spec, name="other")
        assert renamed.cache_key() == spec.cache_key()
        changed = dataclasses.replace(spec, num_runs=31)
        assert changed.cache_key() != spec.cache_key()

    def test_build_schedules_and_unknown_strategy(self, spec):
        schedules = spec.build_schedules()
        assert set(schedules) == set(spec.strategies)
        import dataclasses

        bad = dataclasses.replace(spec, strategies=("no_such_strategy",))
        with pytest.raises(KeyError, match="no_such_strategy"):
            bad.build_schedules()

    def test_run_is_backend_independent(self, spec):
        serial = spec.run(chunk_size=10)
        with ProcessPoolBackend(2) as pool:
            parallel = spec.run(backend=pool, chunk_size=10)
        assert {k: list(v) for k, v in serial.makespans.items()} == {
            k: list(v) for k, v in parallel.makespans.items()
        }

    def test_failure_spec_validation(self):
        with pytest.raises(ValueError):
            FailureSpec(kind="weibull", mtbf=10.0)  # missing shape
        with pytest.raises(ValueError):
            FailureSpec(kind="gamma", mtbf=10.0)

    def test_expand_and_run_scenarios(self, spec):
        sweep = expand_scenarios(
            spec,
            failure=[
                FailureSpec(kind="exponential", mtbf=80.0),
                FailureSpec(kind="weibull", mtbf=80.0, shape=0.7),
            ],
            num_runs=[10],
        )
        assert [s.name for s in sweep] == ["demo[0]", "demo[1]"]
        results = run_scenarios(sweep, chunk_size=10)
        table = scenarios_table(results)
        assert len(table) == 2 * len(spec.strategies)
        assert set(table.column("scenario")) == {"demo[0]", "demo[1]"}

    def test_expand_rejects_unknown_axis(self, spec):
        with pytest.raises(ValueError, match="sweepable"):
            expand_scenarios(spec, not_a_field=[1, 2])


class TestSweepFanOut:
    def test_parameter_grid_order(self):
        grid = parameter_grid(rate=[0.1, 0.2], n=[1, 2])
        assert grid == [
            {"rate": 0.1, "n": 1},
            {"rate": 0.1, "n": 2},
            {"rate": 0.2, "n": 1},
            {"rate": 0.2, "n": 2},
        ]
        assert parameter_grid() == [{}]

    def test_parameter_grid_rejects_empty_axis(self):
        with pytest.raises(ValueError):
            parameter_grid(rate=[])

    def test_parameter_grid_accepts_iterators(self):
        # Generators must be materialised once, not drained by validation.
        grid = parameter_grid(rate=iter([0.1, 0.2]), n=(k for k in (1, 2)))
        assert len(grid) == 4
        assert grid[0] == {"rate": 0.1, "n": 1}

    def test_map_sweep_serial_and_pool_agree(self):
        grid = parameter_grid(rate=[0.1, 0.2], n=[1, 2])
        serial = map_sweep(_combine, grid)
        with ProcessPoolBackend(2) as pool:
            parallel = map_sweep(_combine, grid, backend=pool)
        assert serial == parallel == ["0.1:1", "0.1:2", "0.2:1", "0.2:2"]


class TestExperimentsWithRuntime:
    def test_e6_parallel_and_cached_match_serial(self, tmp_path):
        cache = ResultCache(tmp_path)
        serial = run_experiment("E6", n=12, seed=3)
        parallel = run_experiment("E6", n=12, seed=3, backend=SerialBackend())
        cached_cold = run_experiment("E6", n=12, seed=3, cache=cache)
        cached_warm = run_experiment("E6", n=12, seed=3, cache=cache)
        assert parallel.rows == serial.rows
        assert cached_cold.rows == serial.rows
        assert cached_warm.rows == serial.rows

    def test_e1_runtime_path_still_validates_prop1(self, tmp_path):
        table = run_experiment(
            "E1", num_runs=2000, seed=3, backend=SerialBackend(), chunk_size=500,
            cache=ResultCache(tmp_path),
        )
        assert len(table) > 0
        assert all(row["rel_error"] < 0.1 for row in table.rows)

    def test_analytic_experiments_ignore_runtime_kwargs(self):
        # E2 has no backend parameter; the registry must not forward it.
        table = run_experiment("E2", backend=SerialBackend())
        assert len(table) > 0
