"""Tests for the linear-chain dynamic program (Algorithm 1 / Proposition 3)."""

import math

import pytest

from repro.analysis.bruteforce import brute_force_chain_checkpoints
from repro.core.chain_dp import (
    dp_makespan_recursive,
    optimal_chain_checkpoints,
    reconstruct_recursive_solution,
)
from repro.core.expected_time import expected_completion_time
from repro.core.schedule import Schedule
from repro.workflows.chain import LinearChain
from repro.workflows.generators import uniform_random_chain


class TestSingleTaskChain:
    def test_single_task_value_is_prop1(self):
        chain = LinearChain(
            works=[10.0], checkpoint_costs=[1.0], recovery_costs=[2.0], initial_recovery=0.5
        )
        result = optimal_chain_checkpoints(chain, downtime=0.3, rate=0.05)
        expected = expected_completion_time(10.0, 1.0, 0.3, 0.5, 0.05)
        assert result.expected_makespan == pytest.approx(expected)
        assert result.checkpoint_after == (0,)

    def test_single_task_recursive_matches_paper_base_case(self):
        chain = LinearChain(works=[10.0], checkpoint_costs=[1.0], recovery_costs=[2.0])
        best, num_task = dp_makespan_recursive(chain, downtime=0.0, rate=0.05)
        expected = math.exp(0.05 * 0.0) * (1.0 / 0.05) * math.expm1(0.05 * 11.0)
        assert best == pytest.approx(expected)
        assert num_task == 1


class TestOptimalityAgainstBruteForce:
    @pytest.mark.parametrize("n", [2, 3, 5, 7, 9])
    @pytest.mark.parametrize("rate", [1e-4, 1e-2, 0.2])
    def test_dp_equals_brute_force(self, n, rate):
        chain = uniform_random_chain(
            n, work_range=(1.0, 10.0), checkpoint_range=(0.2, 2.0), seed=n * 100 + int(rate * 1000)
        )
        dp = optimal_chain_checkpoints(chain, downtime=0.4, rate=rate)
        brute = brute_force_chain_checkpoints(chain, downtime=0.4, rate=rate)
        assert dp.expected_makespan == pytest.approx(brute.expected_makespan, rel=1e-12)
        # The optimal value is unique, so the checkpoint sets should coincide
        # unless there are ties; check that the DP's placement achieves the value.
        schedule = dp.to_schedule()
        assert schedule.expected_makespan(0.4, rate) == pytest.approx(
            brute.expected_makespan, rel=1e-12
        )

    @pytest.mark.parametrize("n", [2, 4, 6, 8])
    def test_dp_without_final_checkpoint_matches_brute_force(self, n):
        chain = uniform_random_chain(n, seed=n)
        dp = optimal_chain_checkpoints(chain, 0.2, 0.05, final_checkpoint=False)
        brute = brute_force_chain_checkpoints(chain, 0.2, 0.05, final_checkpoint=False)
        assert dp.expected_makespan == pytest.approx(brute.expected_makespan, rel=1e-12)

    def test_dp_beats_or_matches_any_manual_placement(self, small_chain):
        dp = optimal_chain_checkpoints(small_chain, 0.5, 0.05)
        for positions in ([0, 1, 2, 3], [3], [0, 3], [1, 3], [2, 3]):
            manual = Schedule.for_chain(small_chain, positions).expected_makespan(0.5, 0.05)
            assert dp.expected_makespan <= manual + 1e-12


class TestRecursiveTranscription:
    @pytest.mark.parametrize("n", [1, 2, 4, 6, 8])
    def test_recursive_matches_iterative(self, n):
        chain = uniform_random_chain(n, seed=n + 50)
        iterative = optimal_chain_checkpoints(chain, 0.3, 0.04)
        best, _ = dp_makespan_recursive(chain, 0.3, 0.04)
        assert best == pytest.approx(iterative.expected_makespan, rel=1e-12)

    def test_reconstruction_matches_iterative_placement(self):
        chain = uniform_random_chain(7, seed=99)
        iterative = optimal_chain_checkpoints(chain, 0.1, 0.08)
        recursive = reconstruct_recursive_solution(chain, 0.1, 0.08)
        assert recursive.expected_makespan == pytest.approx(
            iterative.expected_makespan, rel=1e-12
        )
        assert recursive.checkpoint_after[-1] == chain.n - 1

    def test_recursive_rejects_bad_x(self):
        chain = uniform_random_chain(3, seed=1)
        with pytest.raises(ValueError):
            dp_makespan_recursive(chain, 0.0, 0.1, x=0)
        with pytest.raises(ValueError):
            dp_makespan_recursive(chain, 0.0, 0.1, x=4)


class TestPlacementStructure:
    def test_high_failure_rate_checkpoints_everywhere(self):
        chain = LinearChain.uniform(6, work=10.0, checkpoint_cost=0.01)
        result = optimal_chain_checkpoints(chain, 0.0, rate=0.5)
        assert result.checkpoint_after == tuple(range(6))

    def test_rare_failures_and_expensive_checkpoints_checkpoint_once(self):
        chain = LinearChain.uniform(6, work=1.0, checkpoint_cost=5.0)
        result = optimal_chain_checkpoints(chain, 0.0, rate=1e-6)
        assert result.checkpoint_after == (5,)

    def test_final_checkpoint_always_present_by_default(self):
        chain = uniform_random_chain(8, seed=5)
        result = optimal_chain_checkpoints(chain, 0.1, 0.02)
        assert result.checkpoint_after[-1] == 7

    def test_final_checkpoint_can_be_dropped(self):
        chain = LinearChain.uniform(4, work=1.0, checkpoint_cost=5.0)
        result = optimal_chain_checkpoints(chain, 0.1, 1e-6, final_checkpoint=False)
        assert result.checkpoint_after == ()

    def test_no_final_checkpoint_never_worse(self):
        chain = uniform_random_chain(6, seed=11)
        with_final = optimal_chain_checkpoints(chain, 0.1, 0.05, final_checkpoint=True)
        without = optimal_chain_checkpoints(chain, 0.1, 0.05, final_checkpoint=False)
        assert without.expected_makespan <= with_final.expected_makespan + 1e-12

    def test_checkpoint_positions_increasing(self):
        chain = uniform_random_chain(15, seed=4)
        result = optimal_chain_checkpoints(chain, 0.2, 0.03)
        positions = list(result.checkpoint_after)
        assert positions == sorted(positions)
        assert len(set(positions)) == len(positions)


class TestChainDPResult:
    def test_to_schedule_value_consistent(self):
        chain = uniform_random_chain(10, seed=6)
        result = optimal_chain_checkpoints(chain, 0.3, 0.02)
        schedule = result.to_schedule()
        assert schedule.expected_makespan(0.3, 0.02) == pytest.approx(
            result.expected_makespan, rel=1e-12
        )

    def test_plan_matches_positions(self):
        chain = uniform_random_chain(5, seed=7)
        result = optimal_chain_checkpoints(chain, 0.3, 0.02)
        plan = result.plan()
        assert tuple(plan.checkpoint_positions()) == result.checkpoint_after

    def test_num_checkpoints(self):
        chain = uniform_random_chain(5, seed=8)
        result = optimal_chain_checkpoints(chain, 0.3, 0.02)
        assert result.num_checkpoints == len(result.checkpoint_after)


class TestEdgeCasesAndErrors:
    def test_rejects_negative_downtime(self, small_chain):
        with pytest.raises(ValueError):
            optimal_chain_checkpoints(small_chain, -0.1, 0.05)

    def test_rejects_zero_rate(self, small_chain):
        with pytest.raises(ValueError):
            optimal_chain_checkpoints(small_chain, 0.0, 0.0)

    def test_overflowing_instance_raises(self):
        chain = LinearChain.uniform(3, work=1e4, checkpoint_cost=1e4)
        with pytest.raises(OverflowError):
            optimal_chain_checkpoints(chain, 0.0, rate=1.0)

    def test_long_chain_runs(self):
        chain = uniform_random_chain(500, seed=10)
        result = optimal_chain_checkpoints(chain, 0.2, 0.01)
        assert result.expected_makespan > chain.total_work()
        assert result.checkpoint_after[-1] == 499
