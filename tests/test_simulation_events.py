"""Tests for simulation event records and execution logs."""



from repro.simulation.events import EventType, ExecutionLog, SimulationEvent


class TestSimulationEvent:
    def test_str_contains_type_and_time(self):
        event = SimulationEvent(time=12.5, type=EventType.FAILURE, segment=2, detail="lost=3")
        text = str(event)
        assert "failure" in text
        assert "12.5" in text
        assert "lost=3" in text


class TestExecutionLog:
    def _sample_log(self):
        log = ExecutionLog()
        log.record(0.0, EventType.SEGMENT_STARTED, 0)
        log.record(3.0, EventType.FAILURE, 0, "lost=3")
        log.record(4.0, EventType.RECOVERY_STARTED, 0)
        log.record(5.0, EventType.RECOVERY_COMPLETED, 0)
        log.record(9.0, EventType.TASK_COMPLETED, 0, "T1")
        log.record(10.0, EventType.CHECKPOINT_TAKEN, 0)
        log.record(10.0, EventType.EXECUTION_COMPLETED, 0)
        return log

    def test_record_and_len(self):
        log = self._sample_log()
        assert len(log) == 7

    def test_of_type(self):
        log = self._sample_log()
        assert len(log.of_type(EventType.FAILURE)) == 1
        assert len(log.of_type(EventType.DOWNTIME_COMPLETED)) == 0

    def test_counters(self):
        log = self._sample_log()
        assert log.num_failures == 1
        assert log.num_checkpoints == 1

    def test_makespan(self):
        log = self._sample_log()
        assert log.makespan() == 10.0

    def test_makespan_none_when_unfinished(self):
        log = ExecutionLog()
        log.record(0.0, EventType.SEGMENT_STARTED, 0)
        assert log.makespan() is None

    def test_iter(self):
        log = self._sample_log()
        assert len(list(log)) == 7

    def test_pretty_is_multiline(self):
        text = self._sample_log().pretty()
        assert len(text.splitlines()) == 7
