"""Tests for the checkpoint-budget variant of the chain DP."""

import itertools

import pytest

from repro.core.chain_dp import (
    optimal_chain_checkpoints,
    optimal_chain_checkpoints_budget,
)
from repro.core.schedule import Schedule
from repro.workflows.chain import LinearChain
from repro.workflows.generators import uniform_random_chain


def brute_force_with_budget(chain, downtime, rate, budget, final_checkpoint=True):
    """Reference optimum: enumerate placements with at most `budget` checkpoints."""
    n = chain.n
    best = None
    free = range(n - 1) if final_checkpoint else range(n)
    base = [n - 1] if final_checkpoint else []
    for r in range(min(budget - len(base), n) + 1):
        for subset in itertools.combinations(free, r):
            positions = sorted(set(list(subset) + base))
            if len(positions) > budget:
                continue
            value = Schedule.for_chain(chain, positions).expected_makespan(downtime, rate)
            if best is None or value < best:
                best = value
    return best


class TestBudgetDP:
    @pytest.mark.parametrize("budget", [1, 2, 3, 4])
    def test_matches_brute_force(self, budget):
        chain = uniform_random_chain(6, seed=70 + budget)
        dp = optimal_chain_checkpoints_budget(chain, 0.3, 0.05, budget)
        reference = brute_force_with_budget(chain, 0.3, 0.05, budget)
        assert dp.expected_makespan == pytest.approx(reference, rel=1e-12)
        assert dp.num_checkpoints <= budget

    @pytest.mark.parametrize("budget", [1, 2, 3])
    def test_matches_brute_force_without_final(self, budget):
        chain = uniform_random_chain(5, seed=80 + budget)
        dp = optimal_chain_checkpoints_budget(
            chain, 0.1, 0.08, budget, final_checkpoint=False
        )
        reference = brute_force_with_budget(chain, 0.1, 0.08, budget, final_checkpoint=False)
        assert dp.expected_makespan == pytest.approx(reference, rel=1e-12)

    def test_large_budget_equals_unconstrained(self):
        chain = uniform_random_chain(10, seed=90)
        unconstrained = optimal_chain_checkpoints(chain, 0.2, 0.03)
        budgeted = optimal_chain_checkpoints_budget(chain, 0.2, 0.03, 10)
        assert budgeted.expected_makespan == pytest.approx(
            unconstrained.expected_makespan, rel=1e-12
        )
        assert budgeted.checkpoint_after == unconstrained.checkpoint_after

    def test_budget_one_with_final_is_single_checkpoint(self):
        chain = uniform_random_chain(6, seed=91)
        result = optimal_chain_checkpoints_budget(chain, 0.2, 0.05, 1)
        assert result.checkpoint_after == (5,)

    def test_monotone_in_budget(self):
        chain = uniform_random_chain(12, seed=92)
        previous = None
        for budget in range(1, 13):
            value = optimal_chain_checkpoints_budget(chain, 0.2, 0.05, budget).expected_makespan
            if previous is not None:
                assert value <= previous + 1e-9
            previous = value

    def test_value_consistent_with_schedule(self):
        chain = uniform_random_chain(8, seed=93)
        result = optimal_chain_checkpoints_budget(chain, 0.4, 0.04, 3)
        schedule = result.to_schedule()
        assert schedule.expected_makespan(0.4, 0.04) == pytest.approx(
            result.expected_makespan, rel=1e-12
        )

    def test_zero_budget_without_final_checkpoint(self):
        chain = LinearChain.uniform(4, work=2.0, checkpoint_cost=1.0)
        result = optimal_chain_checkpoints_budget(
            chain, 0.0, 0.01, 0, final_checkpoint=False
        )
        assert result.checkpoint_after == ()
        no_ckpt = Schedule.for_chain(chain, []).expected_makespan(0.0, 0.01)
        assert result.expected_makespan == pytest.approx(no_ckpt)

    def test_invalid_budgets_rejected(self):
        chain = LinearChain.uniform(3, work=1.0, checkpoint_cost=0.1)
        with pytest.raises(ValueError):
            optimal_chain_checkpoints_budget(chain, 0.0, 0.01, -1)
        with pytest.raises(ValueError):
            optimal_chain_checkpoints_budget(chain, 0.0, 0.01, 0, final_checkpoint=True)

    def test_overflow_raises(self):
        chain = LinearChain.uniform(3, work=1e4, checkpoint_cost=1.0)
        with pytest.raises(OverflowError):
            optimal_chain_checkpoints_budget(chain, 0.0, 1.0, 1)
