"""Tests for the vectorized batch simulation engine.

The load-bearing guarantees, mirroring the contracts documented in
:mod:`repro.simulation.vectorized`:

* **exact equivalence** on the memoryless (Poisson) fast path: for the same
  seed and chunk plan, ``engine="scalar"`` and ``engine="vectorized"``
  produce bit-identical samples (they share one engine-neutral delay plan),
  and therefore identical estimates and cache entries;
* **statistical equivalence** on the renewal laws (Weibull, log-normal) and
  on trace-driven campaigns, pinned by two-sample Kolmogorov-Smirnov tests;
* **determinism**: the vectorized engine is bit-identical across backends
  and worker counts for a given seed, and a warm disk cache replays a
  vectorized run bit-for-bit.
"""

import dataclasses
import math

import numpy as np
import pytest

from repro.core.schedule import Schedule, Segment
from repro.failures.distributions import (
    ExponentialFailure,
    FailureDistribution,
    LogNormalFailure,
    WeibullFailure,
    inverse_normal_cdf,
)
from repro.failures.platform import Platform
from repro.failures.traces import FailureEvent, FailureTrace, generate_trace
from repro.runtime import (
    ChainSpec,
    FailureSpec,
    ProcessPoolBackend,
    ResultCache,
    ScenarioSpec,
    SerialBackend,
    VectorizedBackend,
    resolve_backend,
    resolve_engine,
)
from repro.simulation.campaign import CampaignRunner
from repro.simulation.engine import TraceFailureSource
from repro.simulation.executor import simulate_segments
from repro.simulation.monte_carlo import MonteCarloEstimator, _estimate_chunk
from repro.simulation.vectorized import (
    PlannedExponentialDelays,
    PlannedPoissonSource,
    generate_trace_times_batch,
    pack_trace_times,
    replay_traces_batch,
    simulate_poisson_batch,
    simulate_poisson_batch_lockstep,
    simulate_renewal_batch,
)
from repro.workflows.generators import uniform_random_chain


def ks_2sample_pvalue(a, b) -> float:
    """Two-sample Kolmogorov-Smirnov p-value (asymptotic), NumPy only.

    Standard Numerical-Recipes formulation: D is the supremum distance
    between the two empirical CDFs and the p-value comes from the
    Kolmogorov distribution with the usual small-sample correction.
    """
    a = np.sort(np.asarray(a, dtype=float))
    b = np.sort(np.asarray(b, dtype=float))
    n1, n2 = len(a), len(b)
    pooled = np.concatenate([a, b])
    cdf1 = np.searchsorted(a, pooled, side="right") / n1
    cdf2 = np.searchsorted(b, pooled, side="right") / n2
    d = float(np.abs(cdf1 - cdf2).max())
    n_eff = math.sqrt(n1 * n2 / (n1 + n2))
    lam = (n_eff + 0.12 + 0.11 / n_eff) * d
    total = 0.0
    for k in range(1, 101):
        total += (-1.0) ** (k - 1) * math.exp(-2.0 * k * k * lam * lam)
    return max(0.0, min(1.0, 2.0 * total))


@pytest.fixture
def schedule():
    chain = uniform_random_chain(8, seed=77)
    return Schedule.for_chain(chain, [2, 5, 7])


@pytest.fixture
def poisson_estimator(schedule):
    return MonteCarloEstimator(schedule, 0.05, 0.5)


class TestPoissonExactEquivalence:
    """Same seed, same chunk plan => bit-identical engines (memoryless models)."""

    def test_estimates_identical_for_rate_model(self, poisson_estimator):
        scalar = poisson_estimator.estimate(400, seed=9, engine="scalar", chunk_size=100)
        vectorized = poisson_estimator.estimate(
            400, seed=9, engine="vectorized", chunk_size=100
        )
        assert scalar == vectorized

    def test_estimates_identical_for_exponential_platform(self, schedule):
        platform = Platform(num_processors=4, failure_law=ExponentialFailure(rate=0.02))
        estimator = MonteCarloEstimator(schedule, platform, 0.5)
        scalar = estimator.estimate(300, seed=4, engine="scalar", chunk_size=150)
        vectorized = estimator.estimate(300, seed=4, engine="vectorized", chunk_size=150)
        assert scalar == vectorized

    def test_chunk_samples_identical(self, poisson_estimator):
        seed = np.random.SeedSequence(21)
        scalar = _estimate_chunk((poisson_estimator, seed, 200, "scalar", 0, None))
        vectorized = _estimate_chunk(
            (poisson_estimator, seed, 200, "vectorized", 0, None)
        )
        for s_arr, v_arr in zip(scalar, vectorized):
            np.testing.assert_array_equal(s_arr, v_arr)

    def test_batch_engine_matches_event_loop_on_shared_plan(self, schedule):
        rate, downtime, count = 0.08, 0.3, 64
        rng = np.random.default_rng(5)
        plan = PlannedExponentialDelays(
            rng, 1.0 / rate, count, first_rounds=len(schedule.segments()) + 4
        )
        batch = simulate_poisson_batch(
            schedule.segments(), rate, downtime, rng, count, plan=plan
        )
        for index in range(count):
            source = PlannedPoissonSource(plan, index)
            result = simulate_segments(schedule.segments(), source, downtime)
            assert result.makespan == batch.makespans[index]
            assert result.num_failures == batch.num_failures[index]
            assert result.wasted_time == batch.wasted_times[index]
            assert result.useful_time == batch.useful_times[index]
            assert result.num_recovery_attempts == batch.recovery_attempts[index]

    def test_engine_inherited_from_vectorized_backend(self, poisson_estimator):
        explicit = poisson_estimator.estimate(
            200, seed=3, engine="vectorized", chunk_size=100
        )
        with VectorizedBackend() as backend:
            inherited = poisson_estimator.estimate(
                200, seed=3, backend=backend, chunk_size=100
            )
        assert explicit == inherited

    def test_engines_share_cache_entries_on_fast_path(self, poisson_estimator, tmp_path):
        cache = ResultCache(tmp_path)
        scalar = poisson_estimator.estimate(
            150, seed=8, engine="scalar", cache=cache, chunk_size=50
        )
        store = cache.with_namespace("monte_carlo")
        assert len(store) == 1
        vectorized = poisson_estimator.estimate(
            150, seed=8, engine="vectorized", cache=cache, chunk_size=50
        )
        # The vectorized request replayed the scalar-warmed entry: same key,
        # no second entry, identical numbers.
        assert len(store) == 1
        assert scalar == vectorized

    def test_vectorized_identical_across_worker_counts(self, poisson_estimator):
        serial = poisson_estimator.estimate(
            120, seed=6, engine="vectorized", chunk_size=30
        )
        with VectorizedBackend(2) as pool:  # spec form: the wrapper owns the pool
            pooled = poisson_estimator.estimate(120, seed=6, backend=pool, chunk_size=30)
        assert serial == pooled


def _checkpoint_all_segments(n: int, seed: int):
    """A length-``n`` checkpoint-all chain: one segment per task."""
    chain = uniform_random_chain(
        n, work_range=(2.0, 9.0), checkpoint_range=(0.3, 1.2),
        rng=np.random.default_rng(seed),
    )
    return Schedule.for_chain(chain, range(n)).segments()


def _batch_fields(batch):
    return (
        batch.makespans, batch.num_failures, batch.wasted_times,
        batch.useful_times, batch.recovery_attempts,
    )


class TestPoissonSegmentJumping:
    """The jump kernel: bit-identical to lock-step and the scalar event loop.

    ``simulate_poisson_batch`` now advances each replication by whole runs
    of successful segment attempts per round (seeded-``cumsum`` prefix sums
    over the shared delay plan) instead of one attempt per lock-step round;
    these tests pin the exactness contract across failure regimes, window
    splits, checkpoint-boundary ties, and the automatic lockstep fallback.
    """

    REGIMES = [
        # (chain length, rate, downtime, batch size) -- from rare-failure
        # long chains (the jump kernel's target) to dense-failure instances
        # (delegated to lock-step) and zero-downtime edge cases.
        (6, 0.02, 0.5, 40),
        (40, 0.004, 0.0, 32),
        (120, 0.002, 0.3, 24),
        (12, 0.35, 1.0, 16),
    ]

    @pytest.mark.parametrize("n,rate,downtime,count", REGIMES)
    def test_jump_matches_lockstep_and_scalar(self, n, rate, downtime, count):
        segments = _checkpoint_all_segments(n, seed=n)

        def plan():
            return PlannedExponentialDelays(
                np.random.default_rng(91), 1.0 / rate, count, first_rounds=n + 4
            )

        jump = simulate_poisson_batch(
            segments, rate, downtime, None, count, plan=plan(), method="jump"
        )
        lock = simulate_poisson_batch_lockstep(
            segments, rate, downtime, None, count, plan=plan()
        )
        auto = simulate_poisson_batch(segments, rate, downtime, None, count, plan=plan())
        for jump_arr, lock_arr, auto_arr in zip(
            _batch_fields(jump), _batch_fields(lock), _batch_fields(auto)
        ):
            np.testing.assert_array_equal(jump_arr, lock_arr)
            np.testing.assert_array_equal(jump_arr, auto_arr)
        shared = plan()
        for index in range(count):
            result = simulate_segments(
                segments, PlannedPoissonSource(shared, index), downtime
            )
            assert result.makespan == jump.makespans[index]
            assert result.num_failures == jump.num_failures[index]
            assert result.wasted_time == jump.wasted_times[index]
            assert result.useful_time == jump.useful_times[index]
            assert result.num_recovery_attempts == jump.recovery_attempts[index]

    @pytest.mark.parametrize("window", [1, 2, 5])
    def test_window_splits_are_bit_identical(self, window):
        # Splitting the jump windows splits the addition chain without
        # re-associating it, so every window cap gives the same bits.
        segments = _checkpoint_all_segments(25, seed=3)
        rate, downtime, count = 0.01, 0.4, 48

        def plan():
            return PlannedExponentialDelays(
                np.random.default_rng(17), 1.0 / rate, count, first_rounds=29
            )

        reference = simulate_poisson_batch(
            segments, rate, downtime, None, count, plan=plan(), method="jump"
        )
        capped = simulate_poisson_batch(
            segments, rate, downtime, None, count, plan=plan(), window=window
        )
        for ref_arr, cap_arr in zip(_batch_fields(reference), _batch_fields(capped)):
            np.testing.assert_array_equal(ref_arr, cap_arr)

    def test_auto_window_tracks_expected_failures(self):
        from repro.simulation.vectorized import _auto_window

        # Rare failures: the window covers the whole chain in one sweep.
        assert _auto_window(256, 0.0) == 257
        # Moderate failures (the ROADMAP regime note): about one
        # failure-to-failure run of segments.
        assert _auto_window(300, 0.5) == int(300 / 1.5 + 1.0)
        # More failures -> shorter windows, with a floor that keeps the jump
        # kernel from degenerating into lock-step rounds...
        assert _auto_window(16, 10.0) == 8
        # ...and a ceiling bounding the sliding-window views.
        assert _auto_window(10_000_000, 0.0) == 65536

    def test_method_is_validated(self):
        segments = _checkpoint_all_segments(3, seed=1)
        with pytest.raises(ValueError, match="unknown method"):
            simulate_poisson_batch(
                segments, 0.1, 0.0, np.random.default_rng(0), 4, method="warp"
            )

    def test_checkpoint_boundary_ties_are_successes_in_every_engine(self):
        # A delay exactly equal to work+checkpoint completes the segment (the
        # executor's `delay >= duration`), and a delay exactly equal to the
        # recovery cost completes the recovery.  Poke the shared plan so both
        # ties occur and check the engines agree bit-for-bit on them.
        segments = [
            Segment(tasks=("a",), work=3.0, checkpoint_cost=1.0,
                    recovery_cost=2.0, checkpointed=True),
            Segment(tasks=("b",), work=2.0, checkpoint_cost=0.5,
                    recovery_cost=1.5, checkpointed=True),
        ]
        count = 3

        def poked_plan():
            plan = PlannedExponentialDelays(
                np.random.default_rng(5), 10.0, count, first_rounds=8
            )
            rows = plan.rows(6)
            rows[:, :] = 100.0  # huge delays: attempts succeed by default
            rows[0, 0] = 4.0    # replication 0: tie on segment 0's attempt
            rows[0, 1] = 3.999  # replication 1: failure during segment 0...
            rows[1, 1] = 2.0    # ...then a tie on its recovery
            return plan

        jump = simulate_poisson_batch(
            segments, 0.1, 0.25, None, count, plan=poked_plan(), method="jump"
        )
        lock = simulate_poisson_batch_lockstep(
            segments, 0.1, 0.25, None, count, plan=poked_plan()
        )
        for jump_arr, lock_arr in zip(_batch_fields(jump), _batch_fields(lock)):
            np.testing.assert_array_equal(jump_arr, lock_arr)
        shared = poked_plan()
        for index in range(count):
            result = simulate_segments(
                segments, PlannedPoissonSource(shared, index), 0.25
            )
            assert result.makespan == jump.makespans[index]
            assert result.num_failures == jump.num_failures[index]
        # The tie semantics themselves: replication 0 committed the boundary
        # attempt (no failure), replication 1 failed once and its exact-cost
        # recovery committed on the first attempt.
        assert jump.num_failures[0] == 0
        assert jump.num_failures[1] == 1
        assert jump.recovery_attempts[1] == 1
        np.testing.assert_allclose(jump.makespans[0], 6.5)

    def test_bit_identity_across_chunk_plans_on_a_long_chain(self):
        schedule = Schedule.for_chain(
            uniform_random_chain(64, seed=13), range(64)
        )
        # Rare-failure long chain: the auto dispatch picks the jump kernel.
        estimator = MonteCarloEstimator(schedule, 0.001, 0.5)
        for chunk_size in (17, 64, 200):
            scalar = estimator.estimate(
                120, seed=29, engine="scalar", chunk_size=chunk_size
            )
            vectorized = estimator.estimate(
                120, seed=29, engine="vectorized", chunk_size=chunk_size
            )
            assert scalar == vectorized

    def test_exponential_platform_rejuvenation_flag_is_exact_and_irrelevant(
        self, schedule
    ):
        # An Exponential platform takes the memoryless fast path whatever its
        # rejuvenate_all_on_failure flag says: rejuvenating a memoryless
        # processor changes nothing, so both flag values and both engines
        # must produce the same samples for the same seed.
        law = ExponentialFailure(rate=0.02)
        flagged = Platform(
            num_processors=4, failure_law=law, rejuvenate_all_on_failure=True
        )
        plain = Platform(num_processors=4, failure_law=law)
        estimates = {
            (name, engine): MonteCarloEstimator(schedule, platform, 0.5).estimate(
                200, seed=31, engine=engine, chunk_size=50
            )
            for name, platform in (("flagged", flagged), ("plain", plain))
            for engine in ("scalar", "vectorized")
        }
        reference = estimates[("plain", "scalar")]
        for value in estimates.values():
            assert value == reference

    def test_plan_rows_matches_scalar_view_and_draw_schedule_is_partition_free(self):
        # The value behind entry (j, i) is a pure function of the rng state
        # and the column count: neither first_rounds nor the materialisation
        # order (bulk rows() vs incremental delay()) may change it.
        bulk = PlannedExponentialDelays(
            np.random.default_rng(23), 2.0, 5, first_rounds=3
        )
        incremental = PlannedExponentialDelays(
            np.random.default_rng(23), 2.0, 5, first_rounds=40
        )
        rows = bulk.rows(30)
        assert rows.shape[0] >= 30
        for round_index in (0, 7, 19, 29):
            for replication in range(5):
                assert rows[round_index, replication] == incremental.delay(
                    replication, round_index
                )
        assert bulk.rounds_drawn >= 30

    def test_jump_engine_renewal_path_still_agrees_by_ks(self, schedule):
        # The renewal batch path is untouched by the jump kernel, but the
        # Poisson fast path feeds the same estimator plumbing; a KS check
        # against the scalar engine on an Exponential law guards the
        # distributional contract end to end (different seeds on purpose).
        estimator = MonteCarloEstimator(schedule, 0.05, 0.5)
        scalar = estimator.estimate(400, seed=101, engine="scalar", chunk_size=100)
        vectorized = estimator.estimate(400, seed=202, engine="vectorized", chunk_size=100)
        assert abs(scalar.mean - vectorized.mean) <= 4 * math.hypot(scalar.sem, vectorized.sem)


class TestRenewalStatisticalEquivalence:
    """Weibull/log-normal renewal: engines agree in distribution, not bit-wise."""

    @pytest.mark.parametrize(
        "law",
        [
            WeibullFailure.from_mtbf(60.0, shape=0.7),
            LogNormalFailure.from_mtbf(60.0, sigma=1.0),
        ],
        ids=["weibull", "lognormal"],
    )
    def test_ks_agreement(self, schedule, law):
        platform = Platform(num_processors=2, failure_law=law)
        estimator = MonteCarloEstimator(schedule, platform, 0.5)
        scalar = _estimate_chunk(
            (estimator, np.random.SeedSequence(1), 1500, "scalar", 0, None)
        )
        vectorized = _estimate_chunk(
            (estimator, np.random.SeedSequence(2), 1500, "vectorized", 0, None)
        )
        assert ks_2sample_pvalue(scalar[0], vectorized[0]) > 0.01

    def test_vectorized_renewal_deterministic(self, schedule):
        platform = Platform(
            num_processors=2, failure_law=WeibullFailure.from_mtbf(60.0, shape=0.7)
        )
        estimator = MonteCarloEstimator(schedule, platform, 0.5)
        a = estimator.estimate(200, seed=5, engine="vectorized", chunk_size=100)
        b = estimator.estimate(200, seed=5, engine="vectorized", chunk_size=100)
        assert a == b

    def test_renewal_engines_get_distinct_cache_entries(self, schedule, tmp_path):
        platform = Platform(
            num_processors=1, failure_law=WeibullFailure.from_mtbf(60.0, shape=0.7)
        )
        estimator = MonteCarloEstimator(schedule, platform, 0.5)
        cache = ResultCache(tmp_path)
        estimator.estimate(80, seed=2, engine="scalar", cache=cache, chunk_size=40)
        estimator.estimate(80, seed=2, engine="vectorized", cache=cache, chunk_size=40)
        assert len(cache.with_namespace("monte_carlo")) == 2

    def test_initial_ages_feed_residual_sampling(self, schedule):
        # Infant-mortality Weibull (shape < 1): a platform of aged processors
        # fails far less often than a freshly rebooted one, so aged starts
        # must yield fewer failures on average.
        law = WeibullFailure.from_mtbf(60.0, shape=0.5)
        platform = Platform(num_processors=2, failure_law=law)
        fresh = simulate_renewal_batch(
            schedule.segments(), platform, 0.5, np.random.default_rng(3), 600
        )
        aged = simulate_renewal_batch(
            schedule.segments(), platform, 0.5, np.random.default_rng(3), 600,
            initial_ages=500.0,
        )
        assert aged.num_failures.mean() < fresh.num_failures.mean()
        assert np.all(aged.makespans > 0)


class TestCampaignEngines:
    @pytest.fixture
    def runner(self):
        chain = uniform_random_chain(8, seed=42)
        schedules = {
            "optimal": Schedule.for_chain(chain, [3, 7]),
            "all": Schedule.for_chain(chain, range(chain.n)),
        }
        return CampaignRunner(
            schedules, WeibullFailure.from_mtbf(50.0, shape=0.7), downtime=0.5
        )

    def test_statistical_agreement_per_strategy(self, runner):
        scalar = runner.run(800, seed=3, engine="scalar", chunk_size=400)
        vectorized = runner.run(800, seed=4, engine="vectorized", chunk_size=400)
        for name in scalar.makespans:
            p = ks_2sample_pvalue(scalar.makespans[name], vectorized.makespans[name])
            assert p > 0.01, f"KS rejected engine agreement for {name!r} (p={p:.4f})"
        assert scalar.ranking() == vectorized.ranking()

    def test_vectorized_campaign_deterministic_across_backends(self, runner):
        serial = runner.run(60, seed=7, engine="vectorized", chunk_size=30)
        with VectorizedBackend(2) as pool:  # spec form: the wrapper owns the pool
            pooled = runner.run(60, seed=7, backend=pool, chunk_size=30)
        assert serial.makespans == pooled.makespans

    def test_vectorized_backend_with_cache_replays_bit_identically(
        self, runner, tmp_path
    ):
        cache = ResultCache(tmp_path)
        with VectorizedBackend() as backend:
            cold = runner.run(50, seed=9, backend=backend, cache=cache, chunk_size=25)
            warm = runner.run(50, seed=9, backend=backend, cache=cache, chunk_size=25)
        assert cold.makespans == warm.makespans
        # And the replay really came from disk: a fresh cacheless run matches.
        fresh = runner.run(50, seed=9, engine="vectorized", chunk_size=25)
        assert {k: list(v) for k, v in fresh.makespans.items()} == {
            k: list(v) for k, v in cold.makespans.items()
        }

    def test_campaign_engines_get_distinct_cache_entries(self, runner, tmp_path):
        cache = ResultCache(tmp_path)
        runner.run(40, seed=1, engine="scalar", cache=cache, chunk_size=20)
        runner.run(40, seed=1, engine="vectorized", cache=cache, chunk_size=20)
        assert len(cache.with_namespace("campaign")) == 2


class TestScenarioSpecEngine:
    @pytest.fixture
    def spec(self):
        return ScenarioSpec(
            name="vec-demo",
            chain=ChainSpec(n=6, seed=12),
            failure=FailureSpec(kind="weibull", mtbf=60.0, shape=0.7),
            strategies=("optimal_dp", "checkpoint_none"),
            num_runs=40,
            downtime=0.5,
            seed=3,
        )

    def test_engine_field_roundtrips(self, spec):
        vec = dataclasses.replace(spec, engine="vectorized")
        assert ScenarioSpec.from_json(vec.to_json()) == vec
        # Legacy payloads without the field still load (engine defaults None).
        payload = spec.to_dict()
        payload.pop("engine")
        assert ScenarioSpec.from_dict(payload) == spec

    def test_engine_validated(self, spec):
        with pytest.raises(ValueError, match="engine"):
            dataclasses.replace(spec, engine="gpu")

    def test_cache_key_distinguishes_engines_only_when_results_differ(self, spec):
        scalar = dataclasses.replace(spec, engine="scalar")
        vectorized = dataclasses.replace(spec, engine="vectorized")
        # None and "scalar" run the same executor: same key (legacy compat).
        assert spec.cache_key() == scalar.cache_key()
        # The vectorized engine draws its traces differently: its own key.
        assert vectorized.cache_key() != spec.cache_key()

    def test_vectorized_spec_runs_deterministically(self, spec):
        vec = dataclasses.replace(spec, engine="vectorized")
        a = vec.run(chunk_size=20)
        b = vec.run(chunk_size=20)
        assert {k: list(v) for k, v in a.makespans.items()} == {
            k: list(v) for k, v in b.makespans.items()
        }
        # And a VectorizedBackend placement does not change a scalar spec.
        with VectorizedBackend() as backend:
            scalar_on_vec_backend = spec.run(backend=backend, chunk_size=20)
        plain = spec.run(chunk_size=20)
        assert {k: list(v) for k, v in scalar_on_vec_backend.makespans.items()} == {
            k: list(v) for k, v in plain.makespans.items()
        }


class TestTraceReplayBatch:
    def _reference(self, segment_lists, times, downtime, horizon):
        reference = np.empty((len(segment_lists), times.shape[0]))
        for trace_index in range(times.shape[0]):
            finite = times[trace_index][np.isfinite(times[trace_index])]
            trace = FailureTrace(
                events=tuple(FailureEvent(time=float(t)) for t in finite),
                horizon=horizon,
                num_processors=1,
            )
            for strat_index, segments in enumerate(segment_lists):
                result = simulate_segments(
                    segments, TraceFailureSource(trace), downtime
                )
                reference[strat_index, trace_index] = result.makespan
        return reference

    @pytest.mark.parametrize("downtime", [0.0, 0.5])
    @pytest.mark.parametrize("num_processors", [1, 3])
    def test_replay_matches_scalar_executor(self, downtime, num_processors):
        chain = uniform_random_chain(10, seed=9)
        segment_lists = [
            Schedule.for_chain(chain, [4, 9]).segments(),
            Schedule.for_chain(chain, range(chain.n)).segments(),
            Schedule.for_chain(chain, [chain.n - 1]).segments(),
        ]
        law = WeibullFailure.from_mtbf(40.0, shape=0.7)
        horizon = 600.0
        times = generate_trace_times_batch(
            law, horizon, num_processors, np.random.default_rng(2), 80
        )
        batch = replay_traces_batch(segment_lists, times, downtime)
        reference = self._reference(segment_lists, times, downtime, horizon)
        # The prefix-sum jumps re-associate additions: agreement to rounding.
        np.testing.assert_allclose(batch, reference, rtol=1e-9)

    def test_generated_times_are_sorted_padded_and_plausible(self):
        law = ExponentialFailure(rate=0.05)
        horizon = 400.0
        times = generate_trace_times_batch(
            law, horizon, 2, np.random.default_rng(11), 300
        )
        finite_mask = np.isfinite(times)
        with np.errstate(invalid="ignore"):
            gaps = np.diff(times, axis=1)
        assert np.all(gaps[~np.isnan(gaps)] >= 0)  # inf-inf padding gaps are nan
        assert np.all(times[finite_mask] < horizon)
        # Every row keeps at least one +inf sentinel for replay cursors.
        assert np.all(~finite_mask[:, -1])
        # Expected event count: 2 processors at rate 0.05 over 400 time units.
        counts = finite_mask.sum(axis=1)
        assert abs(counts.mean() - 2 * 0.05 * horizon) < 3.0

    def test_generated_times_deterministic(self):
        law = WeibullFailure.from_mtbf(40.0, shape=0.7)
        a = generate_trace_times_batch(law, 200.0, 1, np.random.default_rng(3), 50)
        b = generate_trace_times_batch(law, 200.0, 1, np.random.default_rng(3), 50)
        np.testing.assert_array_equal(a, b)

    def test_event_exactly_at_completion_instant_is_skipped(self):
        # An event landing on the very instant an attempt completes must be
        # skipped, exactly as TraceFailureSource does at its next query --
        # probability zero under continuous laws, but reachable with explicit
        # integer-valued traces.
        from repro.core.schedule import Segment

        segments = [
            Segment(tasks=("a",), work=9.0, checkpoint_cost=1.0,
                    recovery_cost=1.0, checkpointed=True),
            Segment(tasks=("b",), work=5.0, checkpoint_cost=0.0,
                    recovery_cost=1.0, checkpointed=False),
        ]
        horizon = 100.0
        event_times = [10.0]  # == completion instant of the first segment
        times = np.array([event_times + [np.inf]])
        batch = replay_traces_batch([segments], times, 0.5)
        trace = FailureTrace(
            events=tuple(FailureEvent(time=t) for t in event_times),
            horizon=horizon,
        )
        scalar = simulate_segments(segments, TraceFailureSource(trace), 0.5)
        assert batch[0, 0] == scalar.makespan == 15.0


class TestResidualBatchSampling:
    @pytest.mark.parametrize(
        "law",
        [
            WeibullFailure.from_mtbf(100.0, shape=0.7),
            WeibullFailure.from_mtbf(100.0, shape=1.5),
            LogNormalFailure.from_mtbf(100.0, sigma=1.0),
        ],
        ids=["weibull-infant", "weibull-wearout", "lognormal"],
    )
    def test_batch_matches_scalar_for_same_uniforms(self, law):
        ages = np.array([1.0, 10.0, 50.0, 200.0, 999.0])
        batch = law.sample_residual_batch(np.random.default_rng(7), ages)
        rng = np.random.default_rng(7)
        scalar = np.array([law.sample_residual(rng, age) for age in ages])
        # Same uniforms through the same conditional inverse transform.
        np.testing.assert_allclose(batch, scalar, rtol=1e-9)

    def test_memoryless_law_ignores_ages(self):
        law = ExponentialFailure(rate=0.1)
        ages = np.array([0.0, 5.0, 500.0])
        batch = law.sample_residual_batch(np.random.default_rng(3), ages)
        fresh = law.sample(np.random.default_rng(3), size=3)
        np.testing.assert_array_equal(batch, fresh)

    def test_conditional_distribution_is_correct(self):
        # Empirical survival of residual draws must match the conditional
        # survival S(age + t) / S(age).
        law = WeibullFailure.from_mtbf(100.0, shape=0.7)
        age = 50.0
        samples = law.sample_residual_batch(
            np.random.default_rng(13), np.full(20_000, age)
        )
        for t in (10.0, 50.0, 200.0):
            empirical = float((samples > t).mean())
            assert abs(empirical - law.conditional_survival(t, age)) < 0.02

    def test_rejects_bad_ages(self):
        law = WeibullFailure.from_mtbf(100.0, shape=0.7)
        with pytest.raises(ValueError):
            law.sample_residual_batch(np.random.default_rng(0), np.array([-1.0]))
        with pytest.raises(ValueError):
            law.sample_residual_batch(np.random.default_rng(0), np.array([np.inf]))


class TestVectorizedBackendAndEngineSpellings:
    def test_resolve_backend_vectorized(self):
        backend = resolve_backend("vectorized")
        assert isinstance(backend, VectorizedBackend)
        assert backend.engine == "vectorized"
        assert isinstance(backend.inner, SerialBackend)
        assert backend.num_workers == 1

    def test_composition_with_pool(self):
        with ProcessPoolBackend(2) as pool:
            backend = VectorizedBackend(pool)
            assert backend.num_workers == 2
            # A borrowed inner backend is not closed with the wrapper.
            backend.close()
            assert pool.map(_identity, [1, 2]) == [1, 2]

    def test_cannot_nest_vectorized_backends(self):
        with pytest.raises(TypeError):
            VectorizedBackend(VectorizedBackend())

    def test_resolve_engine_spellings(self):
        assert resolve_engine(None) == "scalar"
        assert resolve_engine(None, VectorizedBackend()) == "vectorized"
        assert resolve_engine("Vectorized") == "vectorized"
        assert resolve_engine("scalar", VectorizedBackend()) == "scalar"
        # The string backend spec implies the engine like the instance does.
        assert resolve_engine(None, "vectorized") == "vectorized"
        assert resolve_engine(None, "serial") == "scalar"
        assert resolve_engine(None, 4) == "scalar"
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("gpu")
        with pytest.raises(TypeError):
            resolve_engine(3)

    def test_backend_string_spec_selects_vectorized_engine(self, poisson_estimator):
        explicit = poisson_estimator.estimate(
            150, seed=2, engine="vectorized", chunk_size=50
        )
        via_spec = poisson_estimator.estimate(
            150, seed=2, backend="vectorized", chunk_size=50
        )
        assert explicit == via_spec

    def test_estimate_rejects_unknown_engine(self, poisson_estimator):
        with pytest.raises(ValueError, match="unknown engine"):
            poisson_estimator.estimate(10, seed=0, engine="bogus")


def _identity(x):
    return x


class TestTraceModelDispatch:
    """Explicit trace models batch through replay_traces_batch on the
    vectorized engine instead of silently falling back to the scalar loop."""

    @pytest.fixture
    def trace_list(self):
        law = WeibullFailure.from_mtbf(25.0, shape=0.7)
        rng = np.random.default_rng(11)
        return [generate_trace(law, horizon=600.0, rng=rng) for _ in range(250)]

    def test_trace_list_engines_agree(self, schedule, trace_list):
        estimator = MonteCarloEstimator(schedule, trace_list, 0.5)
        scalar = estimator.estimate(250, seed=0, engine="scalar", chunk_size=64)
        vectorized = estimator.estimate(250, seed=0, engine="vectorized", chunk_size=64)
        # Replay is deterministic; the prefix-sum jumps only re-associate the
        # duration sums (~1 ulp), and the failure counts match exactly.
        assert math.isclose(scalar.mean, vectorized.mean, rel_tol=1e-9)
        assert scalar.mean_failures == vectorized.mean_failures
        np.testing.assert_allclose(
            scalar.mean_wasted, vectorized.mean_wasted, rtol=1e-6, atol=1e-9
        )

    def test_trace_list_serial_path_replays_each_trace(self, schedule, trace_list):
        estimator = MonteCarloEstimator(schedule, trace_list, 0.5)
        serial = estimator.estimate(250)
        chunked = estimator.estimate(250, seed=0, engine="scalar", chunk_size=100)
        # Trace replay consumes no randomness, so the serial and chunked
        # scalar paths are identical run for run.
        assert serial.mean == chunked.mean
        assert serial.mean_failures == chunked.mean_failures

    def test_single_trace_broadcasts(self, schedule, trace_list):
        estimator = MonteCarloEstimator(schedule, trace_list[0], 0.5)
        scalar = estimator.estimate(40, seed=0, engine="scalar")
        vectorized = estimator.estimate(40, seed=0, engine="vectorized")
        assert math.isclose(scalar.mean, vectorized.mean, rel_tol=1e-9)
        # Every run replays the same trace; the residual std is pure
        # accumulation rounding in np.std, not sample variation.
        assert scalar.std < 1e-12 * scalar.mean
        assert vectorized.std < 1e-12 * vectorized.mean
        assert scalar.mean_failures == vectorized.mean_failures

    def test_chunk_offsets_select_the_right_traces(self, schedule, trace_list):
        estimator = MonteCarloEstimator(schedule, trace_list, 0.5)
        whole = estimator.estimate(250, seed=0, engine="vectorized", chunk_size=250)
        chunked = estimator.estimate(250, seed=0, engine="vectorized", chunk_size=33)
        assert whole.mean == chunked.mean

    def test_num_runs_capped_by_trace_list(self, schedule, trace_list):
        estimator = MonteCarloEstimator(schedule, trace_list, 0.5)
        with pytest.raises(ValueError, match="exceeds the explicit trace list"):
            estimator.estimate(251, seed=0, engine="vectorized")

    def test_rejects_non_trace_sequences(self, schedule):
        with pytest.raises(TypeError, match="FailureTrace"):
            MonteCarloEstimator(schedule, [0.1, 0.2], 0.5)
        with pytest.raises(TypeError, match="FailureTrace"):
            MonteCarloEstimator(schedule, [], 0.5)

    def test_factory_models_still_fall_back_to_scalar(self, schedule):
        law = WeibullFailure.from_mtbf(25.0, shape=0.7)

        def factory(rng):
            return generate_trace(law, horizon=600.0, rng=rng)

        estimator = MonteCarloEstimator(
            schedule, failure_model_factory=factory, downtime=0.5
        )
        assert estimator._vector_mode() == (None, None)
        scalar = estimator.estimate(60, seed=1, engine="scalar", chunk_size=30)
        vectorized = estimator.estimate(60, seed=1, engine="vectorized", chunk_size=30)
        assert scalar == vectorized  # both ran the scalar event loop

    def test_trace_engines_get_distinct_cache_entries(self, schedule, trace_list, tmp_path):
        estimator = MonteCarloEstimator(schedule, trace_list[:50], 0.5)
        cache = ResultCache(tmp_path)
        estimator.estimate(50, seed=0, engine="scalar", cache=cache, chunk_size=25)
        estimator.estimate(50, seed=0, engine="vectorized", cache=cache, chunk_size=25)
        assert len(cache.with_namespace("monte_carlo")) == 2

    def test_replay_failure_counts_match_scalar(self, schedule, trace_list):
        segments = schedule.segments()
        times = pack_trace_times(trace_list[:64])
        makespans, failures = replay_traces_batch(
            [segments], times, 0.5, with_failures=True
        )
        for index, trace in enumerate(trace_list[:64]):
            result = simulate_segments(segments, TraceFailureSource(trace), 0.5)
            assert failures[0, index] == result.num_failures
            np.testing.assert_allclose(makespans[0, index], result.makespan, rtol=1e-9)


class TestInverseNormalCdf:
    """The hand-rolled AS241 quantile behind the log-normal closed form."""

    def test_known_quantiles(self):
        known = {
            0.5: 0.0,
            0.975: 1.959963984540054,
            0.995: 2.5758293035489004,
            0.841344746068543: 1.0,
        }
        for p, z in known.items():
            assert math.isclose(float(inverse_normal_cdf(p)), z, abs_tol=1e-12)
            assert math.isclose(float(inverse_normal_cdf(1.0 - p)), -z, abs_tol=1e-12)

    def test_edges_and_monotonicity(self):
        assert float(inverse_normal_cdf(0.0)) == -math.inf
        assert float(inverse_normal_cdf(1.0)) == math.inf
        grid = np.linspace(1e-12, 1.0 - 1e-12, 10_001)
        values = inverse_normal_cdf(grid)
        assert np.all(np.diff(values) > 0)

    def test_erf_round_trip(self):
        # Phi(Phi^{-1}(p)) == p with Phi evaluated through math.erfc (exact in
        # the tails, unlike the 1 - cdf subtraction); covers 300 decades.
        p = np.logspace(-300, math.log10(0.5), 400)
        z = inverse_normal_cdf(p)
        back = np.array([0.5 * math.erfc(-x / math.sqrt(2.0)) for x in z])
        np.testing.assert_allclose(back, p, rtol=5e-12)

    def test_lognormal_closed_form_matches_bisection(self):
        law = LogNormalFailure.from_mtbf(100.0, sigma=1.0)
        # Compare against the generic bisection fallback in the range where
        # the latter is itself accurate (its 1 - cdf cancellation degrades in
        # the deep tail, which is precisely what AS241 fixes).
        s = np.logspace(-6, -1e-4, 200)
        closed = law._inverse_survival_batch(s)
        bisect = FailureDistribution._inverse_survival_batch(law, s)
        np.testing.assert_allclose(closed, bisect, rtol=1e-9)

    def test_lognormal_closed_form_edges(self):
        law = LogNormalFailure.from_mtbf(100.0, sigma=1.0)
        out = law._inverse_survival_batch(np.array([1.0, 1.5, 0.0, -0.5]))
        assert out[0] == 0.0 and out[1] == 0.0
        assert out[2] == math.inf and out[3] == math.inf


class TestRejuvenateAllPlatformField:
    """Platform.rejuvenate_all_on_failure reaches both engines."""

    @pytest.fixture
    def rejuvenating_platform(self):
        return Platform(
            num_processors=3,
            failure_law=WeibullFailure.from_mtbf(60.0, shape=0.7),
            rejuvenate_all_on_failure=True,
        )

    def test_engines_agree_with_rejuvenation(self, schedule, rejuvenating_platform):
        estimator = MonteCarloEstimator(schedule, rejuvenating_platform, 0.5)
        scalar = _estimate_chunk(
            (estimator, np.random.SeedSequence(1), 1500, "scalar", 0, None)
        )
        vectorized = _estimate_chunk(
            (estimator, np.random.SeedSequence(2), 1500, "vectorized", 0, None)
        )
        assert ks_2sample_pvalue(scalar[0], vectorized[0]) > 0.01

    def test_rejuvenation_changes_the_distribution(self, schedule):
        # Infant-mortality Weibull: rejuvenating every processor after each
        # failure exposes the platform to more infant mortality, so failures
        # must become more frequent -- the effect the paper criticises [12].
        law = WeibullFailure.from_mtbf(60.0, shape=0.5)
        base = Platform(num_processors=3, failure_law=law)
        rejuvenating = dataclasses.replace(base, rejuvenate_all_on_failure=True)
        keep = MonteCarloEstimator(schedule, base, 0.5).estimate(
            600, seed=3, engine="vectorized"
        )
        renew = MonteCarloEstimator(schedule, rejuvenating, 0.5).estimate(
            600, seed=3, engine="vectorized"
        )
        assert renew.mean_failures > keep.mean_failures

    def test_scalar_source_inherits_the_field(self, rejuvenating_platform):
        from repro.simulation.engine import RenewalPlatformFailureSource, failure_source_for

        source = failure_source_for(rejuvenating_platform, np.random.default_rng(0))
        assert isinstance(source, RenewalPlatformFailureSource)
        assert source.rejuvenate_all_on_failure is True
        # An explicit constructor argument still overrides the field.
        override = RenewalPlatformFailureSource(
            rejuvenating_platform, np.random.default_rng(0),
            rejuvenate_all_on_failure=False,
        )
        assert override.rejuvenate_all_on_failure is False

    def test_platform_failure_times_inherits_the_field(self, rejuvenating_platform):
        explicit = rejuvenating_platform.platform_failure_times(
            np.random.default_rng(7), 500.0, rejuvenate_all_on_failure=True
        )
        inherited = rejuvenating_platform.platform_failure_times(
            np.random.default_rng(7), 500.0
        )
        assert explicit == inherited

    def test_field_is_validated_and_defaults_off(self):
        assert Platform().rejuvenate_all_on_failure is False
        with pytest.raises(TypeError, match="rejuvenate_all_on_failure"):
            Platform(rejuvenate_all_on_failure=1)
