"""Tests for the scenario service (job store, scheduler, HTTP API, client).

The load-bearing guarantees:

* **fidelity** -- a campaign submitted over HTTP returns makespan samples
  bit-identical to a direct :meth:`ScenarioSpec.run` with the same spec, and
  the two share disk-cache entries (same scenario hash);
* **durability** -- jobs survive a server restart via the sqlite store, and
  jobs interrupted mid-run are re-queued on recovery;
* **idempotence** -- resubmitting an equivalent scenario reuses the existing
  job instead of recomputing;
* **control** -- queued jobs cancel immediately, running jobs cancel
  cooperatively between chunks via the progress hook.
"""

import json
import threading
import urllib.request

import pytest

from repro.runtime.cache import ResultCache
from repro.runtime.scenario import ChainSpec, FailureSpec, ScenarioSpec
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobStore
from repro.service.queue import JobCancelled, JobScheduler
from repro.service.server import ScenarioServer


def small_spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="svc-test",
        chain=ChainSpec(n=5, seed=2),
        failure=FailureSpec(kind="weibull", mtbf=40.0, shape=0.7),
        strategies=("optimal_dp", "checkpoint_all"),
        num_runs=120,
        downtime=0.2,
        seed=3,
        engine="vectorized",
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestJobStore:
    def test_submit_get_list_counts(self):
        with JobStore() as store:
            a = store.submit("campaign", {"x": 1}, dedupe_key="k1")
            b = store.submit("experiment", {"experiment": "E2"})
            assert store.get(a.id).state == "queued"
            assert store.get("nope") is None
            assert {job.id for job in store.list_jobs()} == {a.id, b.id}
            assert [job.id for job in store.list_jobs(kind="experiment")] == [b.id]
            assert store.counts()["queued"] == 2

    def test_claim_next_is_fifo_and_exclusive(self):
        with JobStore() as store:
            first = store.submit("campaign", {"n": 1})
            store.submit("campaign", {"n": 2})
            claimed = store.claim_next()
            assert claimed.id == first.id and claimed.state == "running"
            assert claimed.started_at is not None
            second = store.claim_next()
            assert second is not None and second.id != first.id
            assert store.claim_next() is None

    def test_finish_fail_and_progress(self):
        with JobStore() as store:
            job = store.submit("campaign", {})
            store.claim_next()
            store.update_progress(job.id, 3, 8)
            record = store.get(job.id)
            assert (record.chunks_done, record.chunks_total) == (3, 8)
            store.finish(job.id, {"type": "campaign", "num_runs": 1})
            done = store.get(job.id)
            assert done.state == "done" and done.is_terminal
            assert done.result["num_runs"] == 1 and done.finished_at is not None

            other = store.submit("campaign", {})
            store.claim_next()
            store.fail(other.id, "boom")
            assert store.get(other.id).state == "failed"
            assert store.get(other.id).error == "boom"

    def test_cancel_queued_is_immediate_running_is_cooperative(self):
        with JobStore() as store:
            first = store.submit("campaign", {})
            second = store.submit("campaign", {})
            claimed = store.claim_next()  # FIFO: `first` is now running
            assert claimed.id == first.id
            cancelled = store.request_cancel(second.id)  # still queued
            assert cancelled.state == "cancelled"
            flagged = store.request_cancel(first.id)  # running: flag only
            assert flagged.state == "running" and flagged.cancel_requested
            assert store.cancel_requested(first.id)
            # Terminal jobs are unaffected; unknown ids return None.
            assert store.request_cancel(second.id).state == "cancelled"
            assert store.request_cancel("nope") is None

    def test_persistence_and_restart_recovery(self, tmp_path):
        db = tmp_path / "jobs.sqlite"
        store = JobStore(db)
        job = store.submit("campaign", {"scenario": {"answer": 42}}, dedupe_key="kk")
        store.claim_next()  # simulate a worker that dies mid-run
        store.update_progress(job.id, 1, 4)
        store.close()

        reopened = JobStore(db)
        record = reopened.get(job.id)
        assert record.state == "running"  # persisted as the crash left it
        assert record.spec == {"scenario": {"answer": 42}}
        recovered = reopened.recover_interrupted()
        assert recovered == 1
        requeued = reopened.get(job.id)
        assert requeued.state == "queued"
        assert (requeued.chunks_done, requeued.chunks_total) == (0, 0)
        assert reopened.find_reusable("kk").id == job.id
        reopened.close()

    def test_dedupe_ignores_failed_and_cancelled(self):
        with JobStore() as store:
            job = store.submit("campaign", {}, dedupe_key="k")
            store.claim_next()
            store.fail(job.id, "boom")
            assert store.find_reusable("k") is None
            other = store.submit("campaign", {}, dedupe_key="k")
            store.request_cancel(other.id)
            assert store.find_reusable("k") is None


class TestJobScheduler:
    def test_campaign_job_matches_direct_run(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(tmp_path / "cache")
        with JobStore() as store:
            scheduler = JobScheduler(store, cache=cache)
            record, reused = scheduler.submit_campaign(spec.to_dict())
            assert not reused
            assert scheduler.run_pending() == 1
            job = store.get(record.id)
            assert job.state == "done", job.error
            direct = spec.run()
            assert job.result["makespans"] == {
                name: list(samples) for name, samples in direct.makespans.items()
            }
            assert job.result["scenario_key"] == spec.cache_key()
            assert job.chunks_done == job.chunks_total > 0

    def test_submission_validates_before_enqueuing(self):
        with JobStore() as store:
            scheduler = JobScheduler(store)
            with pytest.raises((KeyError, TypeError, ValueError)):
                scheduler.submit_campaign({"name": "broken"})
            with pytest.raises(KeyError):
                scheduler.submit_experiment("E99")
            assert store.counts()["queued"] == 0

    def test_dedupe_by_scenario_hash(self):
        spec = small_spec()
        with JobStore() as store:
            scheduler = JobScheduler(store)
            first, reused_first = scheduler.submit_campaign(spec.to_dict())
            again, reused_again = scheduler.submit_campaign(spec.to_dict())
            assert not reused_first and reused_again
            assert again.id == first.id
            # Renaming must still dedupe (the name is not part of the hash)...
            renamed, reused_renamed = scheduler.submit_campaign(
                small_spec(name="other-name").to_dict()
            )
            assert reused_renamed and renamed.id == first.id
            # ...while changing anything that affects samples must not.
            different, reused_different = scheduler.submit_campaign(
                small_spec(seed=99).to_dict()
            )
            assert not reused_different and different.id != first.id
            # A different chunk plan changes the samples too.
            chunked, reused_chunked = scheduler.submit_campaign(
                spec.to_dict(), chunk_size=17
            )
            assert not reused_chunked

    def test_cancel_requested_job_never_executes(self):
        spec = small_spec()
        with JobStore() as store:
            scheduler = JobScheduler(store)
            record, _ = scheduler.submit_campaign(spec.to_dict())
            claimed = store.claim_next()  # what a worker thread would do
            store.request_cancel(record.id)
            scheduler.execute(claimed)
            assert store.get(record.id).state == "cancelled"
            assert store.get(record.id).result is None

    def test_progress_hook_raises_for_cancelled_jobs(self):
        with JobStore() as store:
            scheduler = JobScheduler(store)
            record = store.submit("campaign", {})
            store.claim_next()
            hook = scheduler._progress_hook(record.id)
            hook(1, 4)
            assert store.get(record.id).chunks_done == 1
            store.request_cancel(record.id)
            with pytest.raises(JobCancelled):
                hook(2, 4)

    def test_failed_jobs_record_the_error(self):
        with JobStore() as store:
            scheduler = JobScheduler(store)
            record, _ = scheduler.submit_experiment("E2", params={"total_work": -1.0})
            scheduler.run_pending()
            job = store.get(record.id)
            assert job.state == "failed"
            assert job.error and "total_work" in job.error

    def test_restart_recovery_reruns_interrupted_jobs(self, tmp_path):
        db = tmp_path / "jobs.sqlite"
        spec = small_spec()
        store = JobStore(db)
        scheduler = JobScheduler(store)
        record, _ = scheduler.submit_campaign(spec.to_dict())
        store.claim_next()  # the "old" process dies while running the job
        store.close()

        restarted = JobStore(db)
        recovered_scheduler = JobScheduler(restarted)  # recovery happens here
        assert recovered_scheduler.recovered == 1
        assert recovered_scheduler.run_pending() == 1
        job = restarted.get(record.id)
        assert job.state == "done", job.error
        direct = spec.run()
        assert job.result["makespans"] == {
            name: list(samples) for name, samples in direct.makespans.items()
        }
        restarted.close()


@pytest.fixture(scope="class")
def live_service(tmp_path_factory):
    """A real HTTP server on an ephemeral port, with workers and a cache."""
    root = tmp_path_factory.mktemp("service")
    store = JobStore()
    cache = ResultCache(root / "cache")
    scheduler = JobScheduler(store, num_workers=2, cache=cache)
    server = ScenarioServer(scheduler, port=0)
    server.start()
    client = ServiceClient(server.url, timeout=10.0)
    yield {"server": server, "client": client, "cache_root": root / "cache"}
    server.shutdown()
    store.close()


@pytest.mark.usefixtures("live_service")
class TestServiceEndToEnd:
    def test_healthz(self, live_service):
        health = live_service["client"].health()
        assert health["status"] == "ok"
        assert set(health["jobs"]) == {"queued", "running", "done", "failed", "cancelled"}
        assert health["workers"] == 2
        stats = health["stats"]
        assert set(stats) >= {
            "http_requests", "jobs_submitted", "jobs_deduplicated",
            "jobs_executed", "queue_depth", "cache_hits", "cache_misses",
        }
        # Requests count after the response goes out: a second poll must see
        # at least the first one.
        assert live_service["client"].health()["stats"]["http_requests"] >= 1

    def test_catalog_lists_experiments_and_engines(self, live_service):
        catalog = live_service["client"].scenarios()
        assert set(catalog["experiments"]) == {f"E{i}" for i in range(1, 11)}
        assert catalog["engines"] == ["scalar", "vectorized"]
        assert "engine" in catalog["sweepable_fields"]

    def test_submitted_campaign_is_bit_identical_to_direct_run(self, live_service):
        client = live_service["client"]
        spec = small_spec(name="e2e")
        job = client.submit_campaign(spec)
        assert job["state"] in ("queued", "running", "done")
        done = client.wait(job["id"], timeout=60.0)
        assert done["state"] == "done", done["error"]
        progress = done["progress"]
        assert progress["chunks_done"] == progress["chunks_total"] > 0

        served = ServiceClient.campaign_result(done)
        direct = spec.run()  # same spec, fresh process-local computation
        assert served.num_runs == direct.num_runs
        for name, samples in direct.makespans.items():
            assert list(served.makespans[name]) == list(samples)

        # The served run warmed the shared cache under the same scenario
        # hash: a direct run against the same root replays it (1 hit).
        replay_cache = ResultCache(live_service["cache_root"])
        replayed = spec.run(cache=replay_cache)
        assert replay_cache.hits == 1 and replay_cache.misses == 0
        assert replayed.makespans == direct.makespans

    def test_resubmission_is_deduplicated(self, live_service):
        client = live_service["client"]
        spec = small_spec(name="dedupe", seed=11)
        first = client.submit_campaign(spec)
        again = client.submit_campaign(spec)
        assert again["id"] == first["id"]
        assert again["deduplicated"]
        client.wait(first["id"], timeout=60.0)

    def test_experiment_job_round_trips_a_table(self, live_service):
        client = live_service["client"]
        job = client.submit_experiment("E2")
        done = client.wait(job["id"], timeout=60.0)
        assert done["state"] == "done", done["error"]
        result = done["result"]
        assert result["type"] == "table"
        assert result["rows"] and set(result["columns"]) >= {"rate", "mtbf"}

    def test_sweep_preview_expands_without_running(self, live_service):
        client = live_service["client"]
        before = {job["id"] for job in client.jobs()}
        preview = client.preview_sweep(
            small_spec(name="sweep"), {"seed": [0, 1], "num_runs": [60, 120, 180]}
        )
        assert preview["count"] == 6
        names = [entry["name"] for entry in preview["scenarios"]]
        assert names[0] == "sweep[0]" and len(set(names)) == 6
        keys = {entry["cache_key"] for entry in preview["scenarios"]}
        assert len(keys) == 6  # every combination hashes differently
        assert {job["id"] for job in client.jobs()} == before  # nothing enqueued

    def test_bad_submissions_are_rejected_with_400(self, live_service):
        client = live_service["client"]
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign({"name": "broken"})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.submit_experiment("E99")
        assert excinfo.value.status == 400

    def test_unknown_job_and_path_are_404(self, live_service):
        client = live_service["client"]
        with pytest.raises(ServiceError) as excinfo:
            client.job("does-not-exist")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/v2/nope")
        assert excinfo.value.status == 404

    def test_listing_filters_and_omits_results(self, live_service):
        client = live_service["client"]
        spec = small_spec(name="listing", seed=21)
        job = client.submit_campaign(spec)
        client.wait(job["id"], timeout=60.0)
        done_jobs = client.jobs(state="done")
        assert any(entry["id"] == job["id"] for entry in done_jobs)
        assert all("result" not in entry for entry in done_jobs)
        with pytest.raises(ServiceError) as excinfo:
            client.jobs(state="nonsense")
        assert excinfo.value.status == 400

    def test_http_cancel_of_a_queued_job(self, tmp_path):
        # A dedicated server whose workers have been stopped: submissions
        # stay queued, so DELETE observes the immediate-cancel path
        # deterministically.
        store = JobStore()
        scheduler = JobScheduler(store)
        server = ScenarioServer(scheduler, port=0)
        server.start()
        try:
            scheduler.stop()  # keep serving HTTP, stop executing jobs
            client = ServiceClient(server.url, timeout=10.0)
            job = client.submit_campaign(small_spec(name="cancel-me"))
            assert job["state"] == "queued"
            cancelled = client.cancel(job["id"])
            assert cancelled["state"] == "cancelled"
            assert client.job(job["id"])["state"] == "cancelled"
        finally:
            server.shutdown()
            store.close()

    def test_concurrent_submissions_all_complete(self, live_service):
        client = live_service["client"]
        specs = [small_spec(name=f"burst-{i}", seed=100 + i, num_runs=60) for i in range(6)]
        ids = []
        errors = []

        def submit(spec):
            try:
                ids.append(client.submit_campaign(spec)["id"])
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=submit, args=(spec,)) for spec in specs]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(set(ids)) == 6
        for job_id in ids:
            assert live_service["client"].wait(job_id, timeout=60.0)["state"] == "done"

    def test_plain_urllib_sees_json(self, live_service):
        # The API is consumable without the client class (curl parity).
        url = live_service["server"].url + "/v1/healthz"
        with urllib.request.urlopen(url, timeout=10.0) as response:
            assert response.headers["Content-Type"] == "application/json"
            assert json.loads(response.read())["status"] == "ok"

    def test_metrics_endpoint_serves_prometheus_text(self, live_service):
        client = live_service["client"]
        # Guarantee at least one executed job and one cache write first.
        job = client.submit_campaign(small_spec(name="metrics-warmup", seed=31))
        assert client.wait(job["id"], timeout=60.0)["state"] == "done"

        text = client.metrics_text()
        for family in (
            "repro_http_requests_total",
            "repro_http_request_seconds",
            "repro_jobs_submitted_total",
            "repro_jobs_completed_total",
            "repro_job_queue_depth",
            "repro_job_run_seconds",
            "repro_cache_requests_total",
            "repro_chunk_seconds",
            "repro_span_seconds",
        ):
            assert f"# TYPE {family}" in text, f"missing metric family {family}"
        assert 'repro_jobs_completed_total{kind="campaign",outcome="done"}' in text
        assert 'outcome="miss"' in text  # the warmup campaign missed its cache

        # curl parity: the raw endpoint speaks the Prometheus content type.
        url = live_service["server"].url + "/v1/metrics"
        with urllib.request.urlopen(url, timeout=10.0) as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            assert b"repro_http_requests_total" in response.read()

    def test_metrics_endpoint_json_snapshot(self, live_service):
        client = live_service["client"]
        client.metrics_text()  # ensure at least one /v1/metrics request counted
        snapshot = client.metrics()
        assert snapshot["repro_http_requests_total"]["kind"] == "counter"
        values = snapshot["repro_http_requests_total"]["values"]
        assert any(entry["labels"]["route"] == "/v1/metrics" for entry in values)
        hist = snapshot["repro_http_request_seconds"]
        assert hist["kind"] == "histogram"
        assert all(len(v["bucket_counts"]) == len(hist["buckets"]) + 1
                   for v in hist["values"])

    def test_job_stats_expose_phase_breakdown(self, live_service):
        client = live_service["client"]
        job = client.submit_campaign(small_spec(name="phase-probe", seed=41))
        done = client.wait(job["id"], timeout=60.0)
        assert done["state"] == "done"
        phases = client.job_stats(job["id"])
        assert set(phases) == {"queue_wait_s", "compute_s", "cache_s"}
        assert all(value >= 0.0 for value in phases.values())
        assert done["timings"]["phases"] == phases

    def test_internal_errors_return_500_with_json_body(self, live_service):
        # Force a handler crash below the dispatch layer and confirm the
        # client sees a structured 500, not a dropped connection.
        server = live_service["server"]
        original = server.scheduler.store.get
        server.scheduler.store.get = lambda job_id: (_ for _ in ()).throw(
            RuntimeError("boom")
        )
        try:
            with pytest.raises(ServiceError) as excinfo:
                live_service["client"].job("whatever")
        finally:
            server.scheduler.store.get = original
        assert excinfo.value.status == 500
        assert excinfo.value.payload == {"error": "internal server error"}


class TestReviewRegressions:
    """Fixes from the pre-merge review, pinned."""

    def test_concurrent_identical_submissions_enqueue_one_job(self):
        # The dedupe check-then-insert must be atomic: N threads racing the
        # same scenario may create exactly one job between them.
        spec_dict = small_spec(name="race").to_dict()
        for _ in range(25):
            with JobStore() as store:
                scheduler = JobScheduler(store)
                results = []

                def submit():
                    results.append(scheduler.submit_campaign(spec_dict))

                threads = [threading.Thread(target=submit) for _ in range(4)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                ids = {record.id for record, _ in results}
                assert len(ids) == 1, f"duplicate jobs enqueued: {ids}"
                assert sum(1 for _, reused in results if not reused) == 1

    def test_stop_with_timeout_abandons_a_stuck_worker(self):
        # A worker wedged in a long job must not block shutdown forever.
        release = threading.Event()
        with JobStore() as store:
            scheduler = JobScheduler(store)
            store.submit("campaign", {})

            def stuck_worker():
                store.claim_next()
                release.wait(10.0)

            thread = threading.Thread(target=stuck_worker, daemon=True)
            thread.start()
            scheduler._threads = [thread]
            scheduler.stop(timeout=0.1)
            assert scheduler.abandoned_workers
            release.set()
            thread.join(5.0)

    def test_healthz_reports_an_attached_but_empty_cache(self, tmp_path):
        # ResultCache defines __len__, so an empty cache is falsy; health
        # must test identity, not truthiness.
        store = JobStore()
        scheduler = JobScheduler(store, cache=ResultCache(tmp_path / "cold"))
        server = ScenarioServer(scheduler, port=0)
        try:
            assert server.health()["cache"] is not None
        finally:
            scheduler.stop()
            store.close()


class TestChunkSizeBounds:
    """Submit-time chunk validation: cancellation latency stays bounded."""

    def test_scheduler_rejects_absurd_chunk_sizes(self):
        with JobStore() as store:
            scheduler = JobScheduler(store)
            spec = small_spec().to_dict()
            # A budget large enough that the num_runs clamp cannot save the
            # oversized chunk (clamping only ever *shrinks* a chunk).
            big = small_spec(num_runs=JobScheduler.MAX_CHUNK_SIZE * 4).to_dict()
            with pytest.raises(ValueError, match="service cap"):
                scheduler.submit_campaign(
                    big, chunk_size=JobScheduler.MAX_CHUNK_SIZE * 2
                )
            with pytest.raises(ValueError, match=">= 1"):
                scheduler.submit_campaign(spec, chunk_size=0)
            with pytest.raises(TypeError, match="integer"):
                scheduler.submit_campaign(spec, chunk_size=2.5)
            with pytest.raises(TypeError, match="integer"):
                scheduler.submit_campaign(spec, chunk_size=True)
            assert store.counts()["queued"] == 0  # nothing slipped in

    def test_oversized_chunk_is_clamped_to_num_runs(self):
        # chunk_size above the budget is a sample-preserving rewrite: every
        # value >= num_runs yields the same single-chunk plan, so the job is
        # stored (and deduplicated) under the canonical num_runs spelling.
        spec = small_spec(name="clamp", num_runs=40)
        with JobStore() as store:
            scheduler = JobScheduler(store)
            record, reused = scheduler.submit_campaign(
                spec.to_dict(), chunk_size=10_000
            )
            assert not reused
            assert record.spec["chunk_size"] == 40
            canonical, reused = scheduler.submit_campaign(
                spec.to_dict(), chunk_size=40
            )
            assert reused and canonical.id == record.id
            scheduler.run_pending()
            done = store.get(record.id)
            assert done.state == "done"
            direct = spec.run(chunk_size=10_000)
            for name, samples in direct.makespans.items():
                assert done.result["makespans"][name] == list(samples)

    def test_experiment_chunk_size_params_are_validated(self):
        with JobStore() as store:
            scheduler = JobScheduler(store)
            with pytest.raises(ValueError, match="service cap"):
                scheduler.submit_experiment(
                    "E1", params={"chunk_size": 10**9, "num_runs": 50}
                )
            record, _ = scheduler.submit_experiment(
                "E1", params={"chunk_size": 25, "num_runs": 50, "seed": 1}
            )
            assert record.spec["params"]["chunk_size"] == 25

    def test_http_submission_with_absurd_chunk_size_is_a_400(self, live_service):
        client = live_service["client"]
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign(
                small_spec(name="huge-chunk", num_runs=100_000), chunk_size=10**9
            )
        assert excinfo.value.status == 400
        assert "service cap" in str(excinfo.value)
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign(small_spec(name="zero-chunk"), chunk_size=0)
        assert excinfo.value.status == 400


class TestExperimentProgress:
    """Experiment jobs report real chunk counts, not just 0/1 -> 1/1."""

    def test_e1_job_reports_per_chunk_progress(self):
        with JobStore() as store:
            scheduler = JobScheduler(store)
            record, _ = scheduler.submit_experiment(
                "E1",
                engine="vectorized",
                params={"num_runs": 120, "seed": 1, "chunk_size": 30},
            )
            scheduler.run_pending()
            done = store.get(record.id)
            assert done.state == "done"
            # 6 scenarios x 4 chunks each: the progress hook saw real chunk
            # counts and the final write is (total, total).
            assert done.chunks_total == 24
            assert done.chunks_done == 24

    def test_e8_job_reports_per_chunk_progress(self):
        with JobStore() as store:
            scheduler = JobScheduler(store)
            record, _ = scheduler.submit_experiment(
                "E8",
                engine="vectorized",
                params={"num_runs": 40, "seed": 6, "chunk_size": 20, "n": 6},
            )
            scheduler.run_pending()
            done = store.get(record.id)
            assert done.state == "done", done.error
            assert done.chunks_total == 32  # 16 estimates x 2 chunks
            assert done.chunks_done == 32

    def test_experiment_without_progress_support_keeps_the_0_1_contract(self):
        with JobStore() as store:
            scheduler = JobScheduler(store)
            record, _ = scheduler.submit_experiment("E2")
            scheduler.run_pending()
            done = store.get(record.id)
            assert done.state == "done"
            assert (done.chunks_done, done.chunks_total) == (1, 1)

    def test_running_experiment_cancels_mid_run(self):
        # The progress hook threads cancellation into the experiment's
        # chunk loop: a cancel requested after the job is claimed lands
        # before the first chunk completes.
        with JobStore() as store:
            scheduler = JobScheduler(store)
            record, _ = scheduler.submit_experiment(
                "E1", params={"num_runs": 60, "seed": 2, "chunk_size": 30}
            )
            claimed = store.claim_next()
            assert claimed.id == record.id
            store.request_cancel(record.id)
            scheduler.execute(claimed)
            assert store.get(record.id).state == "cancelled"


class TestClientWaitProgress:
    """wait() surfaces progress changes and backs off while nothing moves."""

    @staticmethod
    def _record(state, done, total):
        return {
            "id": "j1",
            "state": state,
            "progress": {"chunks_done": done, "chunks_total": total},
        }

    def test_wait_notifies_on_change_and_backs_off_between(self, monkeypatch):
        records = iter([
            self._record("queued", 0, 0),
            self._record("running", 0, 4),
            self._record("running", 0, 4),
            self._record("running", 0, 4),
            self._record("running", 2, 4),
            self._record("done", 4, 4),
        ])

        class Scripted(ServiceClient):
            def job(self, job_id):
                return next(records)

        sleeps = []
        monkeypatch.setattr("repro.service.client.time.sleep", sleeps.append)
        seen = []
        client = Scripted("http://scripted.invalid")
        final = client.wait("j1", timeout=30.0, poll_interval=0.2,
                            on_progress=seen.append)
        assert final["state"] == "done"
        # One notification per observable change: queued, running 0/4,
        # running 2/4, done 4/4 -- the two unchanged polls stay silent.
        assert [(r["state"], r["progress"]["chunks_done"]) for r in seen] == [
            ("queued", 0), ("running", 0), ("running", 2), ("done", 4),
        ]
        # Backoff: the interval grows by half the base per unchanged poll
        # and snaps back to the base on any change.
        assert sleeps == pytest.approx([0.2, 0.2, 0.3, 0.4, 0.2])

    def test_wait_backoff_is_capped(self, monkeypatch):
        states = iter(
            [self._record("running", 0, 4)] * 30 + [self._record("done", 4, 4)]
        )

        class Scripted(ServiceClient):
            def job(self, job_id):
                return next(states)

        sleeps = []
        monkeypatch.setattr("repro.service.client.time.sleep", sleeps.append)
        Scripted("http://scripted.invalid").wait(
            "j1", timeout=300.0, poll_interval=0.2, max_poll_interval=1.0
        )
        assert max(sleeps) == pytest.approx(1.0)
        assert sleeps[-1] == pytest.approx(1.0)

    def test_wait_never_sleeps_past_the_deadline(self, monkeypatch):
        # Backed-off intervals must be clipped to the remaining timeout:
        # otherwise a 1s timeout could stretch by up to max_poll_interval.
        clock = {"t": 0.0}
        sleeps = []
        monkeypatch.setattr("repro.service.client.time.monotonic", lambda: clock["t"])

        def fake_sleep(seconds):
            sleeps.append(seconds)
            clock["t"] += seconds

        monkeypatch.setattr("repro.service.client.time.sleep", fake_sleep)
        stuck = self._record("running", 0, 4)

        class Scripted(ServiceClient):
            def job(self, job_id):
                return dict(stuck)

        with pytest.raises(ServiceError, match="still 'running'"):
            Scripted("http://scripted.invalid").wait(
                "j1", timeout=1.0, poll_interval=0.4, max_poll_interval=5.0
            )
        assert clock["t"] == pytest.approx(1.0)  # raised at the deadline
        assert max(sleeps) <= 1.0
