"""Shared pytest fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import LinearChain, Task, Workflow
from repro.devtools.lockwatch import LockOrderWatchdog, install_watchdog

#: Test modules that exercise the threaded service/observability stack; the
#: lock-order watchdog runs under them so any inversion in lock nesting
#: introduced by a change fails the suite instead of deadlocking production.
_WATCHDOG_SUITES = ("test_service", "test_gateway", "test_obs")


@pytest.fixture(autouse=True)
def _lock_order_watchdog(request):
    """Install a per-test LockOrderWatchdog around the service suites.

    Locks built through ``repro.devtools.lockwatch.tracked_lock`` while a
    test in one of the threaded suites runs are wrapped and their nesting
    order checked across threads; a recorded inversion fails the test with
    the full cycle report.  All other suites pay nothing (the fixture
    yields immediately and ``tracked_lock`` returns raw locks).
    """
    module = getattr(request, "module", None)
    name = getattr(module, "__name__", "") or ""
    if name.rpartition(".")[2] not in _WATCHDOG_SUITES:
        yield
        return
    watchdog = LockOrderWatchdog()
    previous = install_watchdog(watchdog)
    try:
        yield
    finally:
        install_watchdog(previous)
    if watchdog.inversions():
        pytest.fail(
            "lock-order inversions recorded:\n" + watchdog.format_report()
        )


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_chain() -> LinearChain:
    """A 4-task chain with heterogeneous costs."""
    return LinearChain(
        works=[10.0, 4.0, 7.0, 2.0],
        checkpoint_costs=[1.0, 0.5, 2.0, 0.3],
        recovery_costs=[1.5, 0.6, 2.5, 0.4],
        initial_recovery=0.2,
    )


@pytest.fixture
def uniform_chain() -> LinearChain:
    """A 6-task chain with identical tasks."""
    return LinearChain.uniform(6, work=5.0, checkpoint_cost=1.0)


@pytest.fixture
def diamond_workflow() -> Workflow:
    """A small diamond DAG: A -> (B, C) -> D."""
    tasks = [
        Task("A", 2.0, 0.5, 0.5),
        Task("B", 3.0, 0.4, 0.4),
        Task("C", 5.0, 0.6, 0.6),
        Task("D", 1.0, 0.2, 0.2),
    ]
    deps = [("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")]
    return Workflow(tasks, deps, name="diamond")
