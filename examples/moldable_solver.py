"""Scenario: how many processors should a moldable solver use on a flaky machine?

Section 6 of the paper (second extension) sketches the moldable-task problem:
each task can run on any number of processors, the work scales following one
of the Section 3 workload models, checkpoints scale following one of the
Section 3 cost models, and the failure rate grows linearly with the number of
processors used (``lambda = q * lambda_proc``).  More processors mean less
work per attempt but more frequent failures -- so "use the whole machine" is
not always right.

This example instantiates Equation 6 for a three-stage numerical campaign
(mesh generation, an iterative solver, post-processing) and shows:

* the per-task optimal processor counts under three workload models;
* how the optimum shrinks as the per-node failure rate grows;
* what the chain-DP refinement does to the checkpoint placement once each
  task has its allocation.

Run with ``python examples/moldable_solver.py``.
"""

from repro import (
    AmdahlWorkload,
    ConstantCheckpointCost,
    MoldableScheduler,
    MoldableTask,
    NumericalKernelWorkload,
    PerfectlyParallelWorkload,
)
from repro.core.moldable import best_allocation_single_task
from repro.experiments.reporting import ResultTable


def build_campaign():
    return [
        MoldableTask(
            "mesh_generation",
            sequential_work=8_000.0,
            memory_footprint=50.0,
            workload=AmdahlWorkload(gamma=0.02),
        ),
        MoldableTask(
            "implicit_solver",
            sequential_work=200_000.0,
            memory_footprint=400.0,
            workload=NumericalKernelWorkload(gamma=0.25),
        ),
        MoldableTask(
            "post_processing",
            sequential_work=5_000.0,
            memory_footprint=20.0,
            workload=PerfectlyParallelWorkload(),
        ),
    ]


def main() -> None:
    max_processors = 4096
    checkpoint_model = ConstantCheckpointCost(alpha=0.05)
    tasks = build_campaign()

    # ------------------------------------------------------------------
    # Optimal allocation of the solver stage as the node failure rate grows.
    # ------------------------------------------------------------------
    solver = tasks[1]
    table = ResultTable(
        title="Best processor count for the solver stage vs per-node failure rate",
        columns=["lambda_proc", "node_MTBF_h", "best_p", "E_best", "E_all_4096", "penalty_pct"],
    )
    for lambda_proc in (1e-8, 1e-7, 1e-6, 1e-5):
        best_p, e_best = best_allocation_single_task(
            solver, lambda_proc, 5.0, checkpoint_model, max_processors=max_processors
        )
        _, e_full = best_allocation_single_task(
            solver, lambda_proc, 5.0, checkpoint_model,
            max_processors=max_processors, min_processors=max_processors,
        )
        table.add_row(
            lambda_proc=lambda_proc,
            node_MTBF_h=1.0 / lambda_proc / 3600.0,
            best_p=best_p,
            E_best=e_best,
            E_all_4096=e_full,
            penalty_pct=100.0 * (e_full / e_best - 1.0),
        )
    print(table.to_text())
    print()

    # ------------------------------------------------------------------
    # Whole-campaign allocation and checkpoint placement.
    # ------------------------------------------------------------------
    scheduler = MoldableScheduler(
        lambda_proc=1e-6, downtime=5.0,
        checkpoint_model=checkpoint_model, max_processors=max_processors,
    )
    per_task = scheduler.allocate_checkpoint_everywhere(tasks)
    refined = scheduler.allocate_with_chain_dp(tasks)
    print("Campaign allocation (lambda_proc = 1e-6)")
    for task, q, expected in zip(tasks, per_task.allocations, per_task.per_task_expected):
        print(f"  {task.name:<16s}: {q:5d} processors, E[T] = {expected:10.1f}")
    print(f"  checkpoint after every task : E[makespan] = {per_task.expected_makespan:10.1f}")
    print(f"  chain-DP refined placement  : E[makespan] = {refined.expected_makespan:10.1f} "
          f"(checkpoints after tasks {[i + 1 for i in refined.checkpoint_after]})")


if __name__ == "__main__":
    main()
