"""Scenario: operating the checkpoint-scheduling service under real traffic.

The earlier examples run scenarios in-process.  This one runs them the way a
shared cluster-operations team would: a long-lived service that many users
submit to concurrently, protected by a rate limiter, observed through an
audit trail, and followed live over server-sent events instead of polling.

The example:

* boots the asyncio gateway (``repro serve`` is the CLI twin of this) with a
  per-client rate limit and an in-memory audit trail;
* submits a burst of distinct scenario sweeps from two "users" -- one polite,
  one hammering past their budget -- and shows the 429/``Retry-After``
  contract: the throttled client backs off exactly as told and succeeds;
* follows one job's progress over the SSE event stream
  (``GET /v1/jobs/{id}/events``): every chunk transition is pushed, no
  status polling happens at all;
* shows the dedupe guarantee under concurrency: identical submissions from
  different users collapse onto one computation;
* closes with the operator's view: health counters and the audit trail.

Run with ``python examples/serving_at_scale.py``.
"""

import threading
import time

from repro.runtime.scenario import ChainSpec, FailureSpec, ScenarioSpec
from repro.service import GatewayServer, JobScheduler, JobStore, ServiceClient, ServiceError


def make_spec(mtbf: float, num_runs: int = 150) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"ops-mtbf-{mtbf:g}",
        chain=ChainSpec(n=6, seed=11),
        failure=FailureSpec(kind="weibull", mtbf=mtbf, shape=0.7),
        strategies=("optimal_dp", "checkpoint_all"),
        num_runs=num_runs,
        downtime=0.2,
        seed=5,
        engine="vectorized",
    )


def submissions_under_rate_limit(url: str) -> list:
    """Two users submit sweeps; the impatient one hits the limiter."""
    print("== Submitting under a 4 req/s per-client rate limit ==")
    jobs = []

    # Each user identifies itself with a client key: the limiter buckets per
    # key, so one user's burst never throttles another.
    polite = ServiceClient(url, client_key="user-a")
    for mtbf in (25.0, 40.0):
        job = polite.submit_campaign(make_spec(mtbf))
        jobs.append(job["id"])
        print(f"  [user-a] submitted {job['id']} (mtbf={mtbf:g})")
        time.sleep(0.3)  # a human-ish pace stays under the limit

    # user-b fires a burst: the bucket (burst=2) drains, the service answers
    # 429 with the exact wait, and obeying it succeeds.
    hammer = ServiceClient(url, client_key="user-b")
    mtbfs = iter((60.0, 80.0, 120.0))
    submitted = 0
    while submitted < 3:
        try:
            job = hammer._request(
                "POST", "/v1/jobs",
                {"kind": "campaign", "scenario": make_spec(next(mtbfs)).to_dict()},
            )["job"]
        except ServiceError as exc:
            if exc.status != 429:
                raise
            retry_after = exc.payload["retry_after"]
            print(f"  [user-b] throttled: retry in {retry_after:.2f}s -- backing off")
            time.sleep(retry_after + 0.01)
            mtbfs = iter((60.0, 80.0, 120.0)[submitted:])  # resubmit the failed one
            continue
        jobs.append(job["id"])
        submitted += 1
        print(f"  [user-b] submitted {job['id']}")
    return jobs


def follow_via_sse(url: str) -> None:
    """Stream one job's life over SSE -- pushed transitions, zero polling."""
    print("\n== Following a job over server-sent events ==")
    client = ServiceClient(url, client_key="user-sse")
    job = client.submit_campaign(make_spec(200.0, num_runs=600), chunk_size=100)
    print(f"  streaming /v1/jobs/{job['id']}/events")
    for event, data in client.events(job["id"]):
        if event == "heartbeat":
            continue
        total = data["chunks_total"] or "?"
        print(f"  {event:>8s}: state={data['state']:<8s} "
              f"chunks {data['chunks_done']}/{total}")
        if event == "end":
            break
    # SSE frames never carry result payloads; one final fetch does.  The
    # submit + stream-open already spent this user's burst, so be a good
    # citizen about a possible 429 here too.
    try:
        record = client.job(job["id"])
    except ServiceError as exc:
        if exc.status != 429:
            raise
        time.sleep(exc.payload["retry_after"] + 0.01)
        record = client.job(job["id"])
    result = ServiceClient.campaign_result(record)
    best = min(result.makespans, key=lambda s: sum(result.makespans[s]))
    print(f"  finished: best strategy over {result.num_runs} runs is {best!r}")


def concurrent_dedupe(url: str) -> None:
    """Identical submissions from many threads collapse onto one job."""
    print("\n== Concurrent identical submissions deduplicate ==")
    ids = []
    lock = threading.Lock()

    def submit(key):
        job = ServiceClient(url, client_key=key).submit_campaign(make_spec(300.0))
        with lock:
            ids.append((job["id"], job["deduplicated"]))

    threads = [
        threading.Thread(target=submit, args=(f"user-{index}",)) for index in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    unique = {job_id for job_id, _ in ids}
    deduplicated = sum(1 for _, reused in ids if reused)
    print(f"  4 clients submitted the same sweep -> {len(unique)} job, "
          f"{deduplicated} deduplicated")


def operators_view(gateway: GatewayServer, url: str) -> None:
    print("\n== The operator's view ==")
    client = ServiceClient(url, client_key="operator")
    health = client.health()
    print(f"  health: {health['status']}, jobs={health['jobs']}")
    print(f"  http requests served: {health['stats']['http_requests']:.0f}")
    print("  audit trail (who did what):")
    for entry in gateway.audit.tail(5):
        who = entry.get("client", "?")
        print(f"    {entry['action']:<12s} job={entry.get('job_id', '?')} "
              f"client={who}")


def main() -> None:
    store = JobStore()  # use JobStore("jobs.db") to survive restarts
    scheduler = JobScheduler(store, num_workers=1)
    gateway = GatewayServer(scheduler, port=0, rate_limit=4.0, burst=2)
    gateway.start()
    print(f"gateway listening on {gateway.url}\n")
    try:
        jobs = submissions_under_rate_limit(gateway.url)
        client = ServiceClient(gateway.url, client_key="user-a")
        for job_id in jobs:
            client.wait(job_id, timeout=120, stream=True)
        print(f"  all {len(jobs)} jobs finished")
        follow_via_sse(gateway.url)
        concurrent_dedupe(gateway.url)
        operators_view(gateway, gateway.url)
    finally:
        gateway.shutdown()
        store.close()
    print("\ngateway stopped; with --db the queue would survive a restart")


if __name__ == "__main__":
    main()
