"""Scenario: scheduling under realistic (non-Exponential) failure laws.

Field studies (the paper's references [8-11]) report that real cluster
failures follow Weibull distributions with shape below 1 (infant mortality) or
log-normal distributions -- not the memoryless Exponential law the closed-form
results assume.  Section 6 of the paper explains that no closed form exists in
that case and that heuristics must be evaluated by simulation; this example
does exactly that:

* a synthetic failure trace is generated for a 16-node cluster whose nodes
  fail according to a Weibull law fitted to a target MTBF (standing in for a
  Failure Trace Archive log, which is not redistributable);
* four checkpoint placements for a 25-task analysis chain are compared by
  replaying them against simulated platform failures: the Exponential-DP
  placement (using the equivalent MTBF), the work-maximisation placement of
  Bouguerra-Trystram-Wagner, checkpoint-everywhere and never-checkpoint;
* the same comparison is repeated with the "rejuvenate every node after each
  failure" assumption that the paper criticises, to show how much it distorts
  the picture for Weibull laws.

Run with ``python examples/weibull_cluster_study.py``.
"""

import numpy as np

from repro import (
    MonteCarloEstimator,
    Platform,
    Schedule,
    WeibullFailure,
    generate_trace,
    optimal_chain_checkpoints,
    uniform_random_chain,
    work_maximization_chain,
)
from repro.experiments.reporting import ResultTable
from repro.simulation.engine import RenewalPlatformFailureSource


def main() -> None:
    rng = np.random.default_rng(5)

    # A 16-node cluster; each node fails with a Weibull law (shape 0.7) and a
    # node MTBF of 120 hours, i.e. a platform MTBF of 7.5 hours.
    node_mtbf_minutes = 120.0 * 60.0
    law = WeibullFailure.from_mtbf(node_mtbf_minutes, shape=0.7)
    platform = Platform(num_processors=16, failure_law=law, downtime=10.0)
    platform_rate = 16.0 / node_mtbf_minutes
    print(platform.describe())

    # A synthetic stand-in for a production failure log.
    trace = generate_trace(law, horizon=30 * 24 * 60.0, num_processors=16, rng=rng)
    stats = trace.statistics()
    print(f"Synthetic 30-day trace: {stats.count} failures, "
          f"platform MTBF {stats.mtbf:.1f} min, CV {stats.cv:.2f}\n")

    # The application: a 25-task analysis chain, ~20 hours of work.
    chain = uniform_random_chain(
        25, work_range=(20.0, 80.0), checkpoint_range=(2.0, 10.0), rng=rng
    )
    print(f"Application chain: {chain.n} tasks, {chain.total_work():.0f} minutes of work\n")

    placements = {
        "exp_dp (MTBF-equivalent)": optimal_chain_checkpoints(
            chain, platform.downtime, platform_rate
        ).checkpoint_after,
        "work_maximisation": work_maximization_chain(
            chain, WeibullFailure.from_mtbf(1.0 / platform_rate, shape=0.7)
        ).checkpoint_after,
        "checkpoint_all": tuple(range(chain.n)),
        "never (final only)": (chain.n - 1,),
    }

    def simulate(positions, rejuvenate_all):
        schedule = Schedule.for_chain(chain, positions)
        estimator = MonteCarloEstimator(
            schedule,
            failure_model_factory=lambda generator: RenewalPlatformFailureSource(
                platform, generator, rejuvenate_all_on_failure=rejuvenate_all
            ),
            downtime=platform.downtime,
        )
        return estimator.estimate(150, rng=rng)

    table = ResultTable(
        title="Simulated makespan (minutes) under Weibull(0.7) node failures",
        columns=["placement", "checkpoints", "mean", "ci95_low", "ci95_high",
                 "mean_with_full_rejuvenation"],
    )
    for name, positions in placements.items():
        realistic = simulate(positions, rejuvenate_all=False)
        rejuvenated = simulate(positions, rejuvenate_all=True)
        table.add_row(
            placement=name,
            checkpoints=len(positions),
            mean=realistic.mean,
            ci95_low=realistic.ci95_low,
            ci95_high=realistic.ci95_high,
            mean_with_full_rejuvenation=rejuvenated.mean,
        )
    print(table.to_text())
    print("\nNote: the last column uses the 'all nodes rejuvenated after every failure'")
    print("assumption of Bouguerra et al. [12]; with shape < 1 it makes the platform")
    print("look less reliable right after a failure than it really is, which is why the")
    print("paper argues against it.")


if __name__ == "__main__":
    main()
