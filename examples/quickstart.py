"""Quickstart: the paper's three results in thirty lines.

1. Proposition 1 -- the exact expected time to execute a work segment and
   checkpoint it, validated against Monte-Carlo simulation.
2. Proposition 3 / Algorithm 1 -- the optimal checkpoint placement for a
   linear chain of tasks.
3. The baseline comparison: how much the optimal placement saves over
   checkpointing everywhere or never.

Run with ``python examples/quickstart.py``.
"""

from repro import (
    LinearChain,
    checkpoint_all_chain,
    checkpoint_none_chain,
    estimate_expected_completion_time,
    expected_completion_time,
    optimal_chain_checkpoints,
)


def main() -> None:
    # ----------------------------------------------------------------
    # 1. Proposition 1: E[T(W, C, D, R, lambda)]
    # ----------------------------------------------------------------
    work, checkpoint, downtime, recovery, rate = 100.0, 5.0, 1.0, 5.0, 0.01
    analytic = expected_completion_time(work, checkpoint, downtime, recovery, rate)
    simulated = estimate_expected_completion_time(
        work, checkpoint, downtime, recovery, rate, num_runs=5_000, seed=42
    )
    print("Proposition 1 (closed form vs simulation)")
    print(f"  analytic  E[T] = {analytic:10.3f}")
    print(f"  simulated E[T] = {simulated.mean:10.3f}  "
          f"(95% CI [{simulated.ci95_low:.3f}, {simulated.ci95_high:.3f}])")
    print()

    # ----------------------------------------------------------------
    # 2. Algorithm 1: optimal checkpoints for a linear chain
    # ----------------------------------------------------------------
    chain = LinearChain(
        works=[30.0, 10.0, 45.0, 20.0, 15.0, 60.0],
        checkpoint_costs=[2.0, 8.0, 3.0, 1.0, 6.0, 2.0],
        recovery_costs=[2.0, 8.0, 3.0, 1.0, 6.0, 2.0],
    )
    result = optimal_chain_checkpoints(chain, downtime=1.0, rate=0.01)
    print("Algorithm 1 (optimal checkpoint placement on a 6-task chain)")
    print(f"  checkpoint after tasks : {[i + 1 for i in result.checkpoint_after]}")
    print(f"  expected makespan      : {result.expected_makespan:.3f}")
    print()

    # ----------------------------------------------------------------
    # 3. How much does optimality buy?
    # ----------------------------------------------------------------
    everywhere = checkpoint_all_chain(chain, 1.0, 0.01).expected_makespan
    never = checkpoint_none_chain(chain, 1.0, 0.01).expected_makespan
    print("Comparison with trivial placements")
    print(f"  checkpoint everywhere  : {everywhere:.3f}  "
          f"(+{100 * (everywhere / result.expected_makespan - 1):.1f}%)")
    print(f"  single final checkpoint: {never:.3f}  "
          f"(+{100 * (never / result.expected_makespan - 1):.1f}%)")
    print(f"  optimal (Algorithm 1)  : {result.expected_makespan:.3f}")


if __name__ == "__main__":
    main()
