"""Scenario: operating a checkpointed pipeline with imperfect knowledge.

Three questions an operations team actually asks, answered with the library's
analysis tools:

1. *Where does the time go?* — the waste decomposition of the optimal
   schedule (useful work vs checkpoint overhead vs failure-induced waste), and
   how it shifts with the platform failure rate.
2. *What if our MTBF estimate is off?* — the sensitivity of the placement to a
   mis-estimated failure rate (the task-level analogue of Daly's sub-optimal
   period study, the paper's reference [23]).
3. *Is the difference real?* — a paired simulation campaign (common random
   numbers) comparing the optimal placement against the naive ones on the very
   same failure traces, with confidence intervals on the difference.

Run with ``python examples/operations_planning.py``.
"""

from repro import (
    CampaignRunner,
    ExponentialFailure,
    Schedule,
    optimal_chain_checkpoints,
    rate_sensitivity_sweep,
    uniform_random_chain,
    waste_breakdown,
)
from repro.experiments.reporting import ResultTable


def main() -> None:
    chain = uniform_random_chain(
        30, work_range=(5.0, 25.0), checkpoint_range=(1.0, 4.0), seed=77
    )
    downtime = 3.0
    true_rate = 1.0 / 400.0  # one failure every 400 minutes
    print(f"Pipeline: {chain.n} tasks, {chain.total_work():.0f} minutes of work, "
          f"platform MTBF {1 / true_rate:.0f} minutes\n")

    # ------------------------------------------------------------------
    # 1. Waste decomposition across failure-rate regimes.
    # ------------------------------------------------------------------
    table = ResultTable(
        title="Where the time goes (optimal placement per regime)",
        columns=["MTBF_min", "checkpoints", "useful_pct", "checkpoint_pct", "failure_waste_pct"],
    )
    for mtbf in (4000.0, 400.0, 100.0):
        rate = 1.0 / mtbf
        placement = optimal_chain_checkpoints(chain, downtime, rate)
        breakdown = waste_breakdown(placement.to_schedule(), downtime, rate)
        table.add_row(
            MTBF_min=mtbf,
            checkpoints=placement.num_checkpoints,
            useful_pct=100 * breakdown.efficiency,
            checkpoint_pct=100 * breakdown.overhead_fraction,
            failure_waste_pct=100 * breakdown.waste_fraction,
        )
    print(table.to_text())
    print()

    # ------------------------------------------------------------------
    # 2. Sensitivity to a mis-estimated MTBF.
    # ------------------------------------------------------------------
    sweep = rate_sensitivity_sweep(chain, true_rate, downtime,
                                   ratios=(0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 10.0))
    print(sweep.to_text())
    print("(ratios < 1 mean the operator under-estimates the failure rate;")
    print(" note how much more expensive that side of the curve is)\n")

    # ------------------------------------------------------------------
    # 3. Paired simulation campaign against the naive placements.
    # ------------------------------------------------------------------
    optimal = optimal_chain_checkpoints(chain, downtime, true_rate)
    schedules = {
        "optimal_dp": optimal.to_schedule(),
        "checkpoint_all": Schedule.for_chain(chain, range(chain.n)),
        "final_only": Schedule.for_chain(chain, [chain.n - 1]),
    }
    runner = CampaignRunner(schedules, ExponentialFailure(rate=true_rate), downtime=downtime)
    result = runner.run(300, seed=7)
    print(result.to_table(baseline="optimal_dp").to_text())
    print("\n(differences are paired: every strategy saw the same 300 failure traces)")


if __name__ == "__main__":
    main()
