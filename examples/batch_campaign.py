"""Scenario: grouping a batch campaign of independent jobs between checkpoints.

This is the setting of the paper's NP-completeness result (Proposition 2): a
campaign of independent jobs runs one after another on the whole platform, and
the operator decides after which jobs to take a coordinated checkpoint.  Too
few checkpoints and a failure wastes hours of finished jobs; too many and the
checkpoint overhead dominates.

The example:

* builds a campaign of independent jobs with heterogeneous durations;
* solves small campaigns exactly (exhaustive set-partition enumeration) and
  shows the heuristic matches the optimum;
* scales to a 60-job campaign with the heuristic and compares against the two
  placements an operator would naively pick (a checkpoint after every job, or
  a single checkpoint at the end);
* demonstrates the 3-PARTITION structure: on an instance built from a YES
  3-PARTITION instance, the optimal grouping is exactly the hidden partition.

Run with ``python examples/batch_campaign.py``.
"""

import numpy as np

from repro import (
    exhaustive_independent_schedule,
    generate_yes_instance,
    schedule_independent_tasks,
    solve_three_partition,
    three_partition_to_schedule,
)
from repro.core.independent import grouping_expected_time
from repro.experiments.reporting import ResultTable


def small_campaign_exact_vs_heuristic() -> None:
    rng = np.random.default_rng(7)
    works = list(rng.uniform(10.0, 120.0, size=9))  # nine jobs, 10 min to 2 h
    checkpoint = 6.0
    downtime, rate = 2.0, 1.0 / 600.0  # one failure every 10 hours

    optimum = exhaustive_independent_schedule(works, checkpoint, checkpoint, downtime, rate)
    heuristic = schedule_independent_tasks(works, checkpoint, checkpoint, downtime, rate)

    print("Small campaign (9 jobs): exact vs heuristic")
    print(f"  exhaustive optimum : {optimum.expected_makespan:8.1f} min, "
          f"{optimum.num_checkpoints} checkpoints, group works "
          f"{[round(w) for w in optimum.group_works()]}")
    print(f"  heuristic          : {heuristic.expected_makespan:8.1f} min, "
          f"{heuristic.num_checkpoints} checkpoints "
          f"(+{100 * (heuristic.expected_makespan / optimum.expected_makespan - 1):.2f}%)")
    print()


def large_campaign() -> None:
    rng = np.random.default_rng(11)
    works = list(rng.uniform(5.0, 90.0, size=60))
    checkpoint = 6.0
    downtime = 2.0

    table = ResultTable(
        title="60-job campaign: expected makespan (minutes) by grouping policy",
        columns=["platform_MTBF_h", "heuristic", "ckpt_after_each_job", "single_final_ckpt",
                 "heuristic_groups"],
    )
    n = len(works)
    for mtbf_hours in (500.0, 50.0, 10.0):
        rate = 1.0 / (mtbf_hours * 60.0)
        heuristic = schedule_independent_tasks(works, checkpoint, checkpoint, downtime, rate)
        singletons = grouping_expected_time(
            [[i] for i in range(n)], works, checkpoint, checkpoint, downtime, rate
        )
        one_group = grouping_expected_time(
            [list(range(n))], works, checkpoint, checkpoint, downtime, rate
        )
        table.add_row(
            platform_MTBF_h=mtbf_hours,
            heuristic=heuristic.expected_makespan,
            ckpt_after_each_job=singletons,
            single_final_ckpt=one_group,
            heuristic_groups=heuristic.num_checkpoints,
        )
    print(table.to_text())
    print()


def hidden_three_partition() -> None:
    instance = generate_yes_instance(3, seed=3)
    reduced = three_partition_to_schedule(instance)
    partition = solve_three_partition(instance)
    heuristic = schedule_independent_tasks(
        list(reduced.works),
        reduced.checkpoint_cost,
        reduced.recovery_cost,
        reduced.downtime,
        reduced.rate,
        initial_recovery=reduced.recovery_cost,
    )
    print("Hidden 3-PARTITION structure (Proposition 2)")
    print(f"  job durations          : {[int(v) for v in reduced.works]}")
    print(f"  proof bound K          : {reduced.bound:.3f}")
    print(f"  heuristic expectation  : {heuristic.expected_makespan:.3f}")
    print(f"  heuristic group works  : {[round(w) for w in heuristic.group_works()]}")
    print(f"  hidden partition       : "
          f"{[[int(reduced.works[i]) for i in g] for g in partition]}")


def main() -> None:
    small_campaign_exact_vs_heuristic()
    large_campaign()
    hidden_three_partition()


if __name__ == "__main__":
    main()
