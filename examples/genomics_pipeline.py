"""Scenario: checkpointing a long-running scientific pipeline (linear chain).

The paper motivates linear chains as "a situation very frequent in scientific
applications": filtering pipelines, simulation post-processing, genomics
pipelines, etc.  This example models a typical alignment/variant-calling
pipeline as a chain of heterogeneous tasks with very different checkpoint
costs (a checkpoint after the aligner must dump a huge BAM file; a checkpoint
after the indexing step is nearly free), and asks:

* where should checkpoints go, as a function of the platform failure rate?
* how much does the optimal placement (Algorithm 1) save compared to the
  policies an operator would naively use?
* does the analytic ranking survive contact with the (simulated) real world?

Run with ``python examples/genomics_pipeline.py``.
"""

import numpy as np

from repro import (
    LinearChain,
    MonteCarloEstimator,
    evaluate_chain_strategies,
)
from repro.experiments.reporting import ResultTable


def build_pipeline() -> LinearChain:
    """An alignment + variant-calling pipeline with realistic relative costs.

    Durations are in minutes on the full platform; checkpoint costs reflect
    the size of the intermediate data each stage would have to dump.
    """
    stages = [
        # (name,            work, checkpoint cost)
        ("quality_control",   20.0,  1.0),
        ("adapter_trimming",  35.0,  8.0),
        ("alignment",        240.0, 30.0),   # huge BAM output
        ("sort_index",        45.0,  4.0),
        ("mark_duplicates",   60.0, 25.0),
        ("base_recalibration", 90.0, 20.0),
        ("variant_calling",  180.0,  6.0),
        ("joint_genotyping",  75.0,  5.0),
        ("annotation",        40.0,  2.0),
    ]
    return LinearChain(
        works=[w for _, w, _ in stages],
        checkpoint_costs=[c for _, _, c in stages],
        recovery_costs=[c for _, _, c in stages],
        names=[name for name, _, _ in stages],
    )


def main() -> None:
    chain = build_pipeline()
    downtime = 5.0  # node replacement takes ~5 minutes
    print(f"Pipeline: {chain.n} stages, {chain.total_work():.0f} minutes of failure-free work\n")

    # ------------------------------------------------------------------
    # Sweep the platform MTBF from "very reliable" to "fails every ~8 hours".
    # ------------------------------------------------------------------
    table = ResultTable(
        title="Expected pipeline makespan (minutes) by checkpoint strategy",
        columns=["platform_MTBF_h", "optimal", "ckpt_after_each_stage", "final_only",
                 "daly_period", "optimal_checkpoints"],
    )
    for mtbf_hours in (2000.0, 200.0, 50.0, 8.0):
        rate = 1.0 / (mtbf_hours * 60.0)
        strategies = evaluate_chain_strategies(chain, downtime, rate)
        table.add_row(
            platform_MTBF_h=mtbf_hours,
            optimal=strategies["optimal_dp"].expected_makespan,
            ckpt_after_each_stage=strategies["checkpoint_all"].expected_makespan,
            final_only=strategies["checkpoint_none"].expected_makespan,
            daly_period=strategies["daly_period"].expected_makespan,
            optimal_checkpoints=strategies["optimal_dp"].num_checkpoints,
        )
    print(table.to_text())
    print()

    # ------------------------------------------------------------------
    # Cross-check the analytic expectation by simulation for one regime.
    # ------------------------------------------------------------------
    rate = 1.0 / (50.0 * 60.0)
    optimal = evaluate_chain_strategies(chain, downtime, rate)["optimal_dp"]
    rng = np.random.default_rng(2024)
    estimate = MonteCarloEstimator(optimal.to_schedule(), rate, downtime).estimate(1500, rng=rng)
    print("Cross-check at MTBF = 50 h:")
    print(f"  analytic expected makespan : {optimal.expected_makespan:.1f} min")
    print(f"  simulated mean (1500 runs) : {estimate.mean:.1f} min "
          f"(95% CI [{estimate.ci95_low:.1f}, {estimate.ci95_high:.1f}])")
    print(f"  optimal checkpoints after  : "
          f"{[chain.names[i] for i in optimal.checkpoint_after]}")


if __name__ == "__main__":
    main()
