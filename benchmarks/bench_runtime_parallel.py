"""Runtime -- serial vs process-pool execution of a Weibull campaign.

Measures the wall-clock effect of the parallel campaign runtime
(:mod:`repro.runtime`) on the kind of workload it was built for: a paired
simulation campaign under Weibull failures (no closed form exists, so every
data point is earned by replication).  The benchmark

* times the same campaign on the serial backend and on a process pool sized
  to the machine,
* asserts the two produce bit-identical per-strategy makespans (the runtime's
  core guarantee: parallelism changes wall-clock time, never numbers), and
* asserts a warm disk cache replays the campaign without simulating.

Speedup is hardware-dependent: on an N-core machine the pool approaches Nx on
this embarrassingly parallel workload (minus process start-up and chunk
dispatch overhead); on a single-core container it hovers around 1x or below.
Run as a script to print the measured timings::

    PYTHONPATH=src python benchmarks/bench_runtime_parallel.py
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments.reporting import ResultTable
from repro.runtime import (
    ChainSpec,
    FailureSpec,
    ProcessPoolBackend,
    ResultCache,
    ScenarioSpec,
    SerialBackend,
)

#: The campaign under test: a 30-task chain under platform Weibull failures
#: with infant mortality (shape < 1, as reported by the field studies the
#: paper cites), three strategies per shared trace.
SCENARIO = ScenarioSpec(
    name="bench-weibull-campaign",
    chain=ChainSpec(n=30, work_range=(5.0, 15.0), checkpoint_range=(1.0, 2.0), seed=5),
    failure=FailureSpec(kind="weibull", mtbf=150.0, shape=0.7),
    strategies=("optimal_dp", "checkpoint_all", "checkpoint_none"),
    num_runs=600,
    downtime=0.5,
    seed=11,
)

CHUNK_SIZE = 50


def _timed_run(backend, cache=None):
    start = time.perf_counter()
    result = SCENARIO.run(backend=backend, cache=cache, chunk_size=CHUNK_SIZE)
    return result, time.perf_counter() - start


def measure(num_workers: int | None = None) -> ResultTable:
    """Time the campaign serially, on a pool, and from a warm cache."""
    if num_workers is None:
        num_workers = os.cpu_count() or 1
    table = ResultTable(
        title=f"Runtime benchmark: Weibull campaign, {SCENARIO.num_runs} paired rounds",
        columns=["mode", "seconds", "speedup_vs_serial", "identical_to_serial"],
    )
    serial_result, serial_seconds = _timed_run(SerialBackend())
    table.add_row(mode="serial", seconds=serial_seconds, speedup_vs_serial=1.0,
                  identical_to_serial=True)
    with ProcessPoolBackend(num_workers) as pool:
        pool_result, pool_seconds = _timed_run(pool)
    table.add_row(
        mode=f"pool({num_workers})",
        seconds=pool_seconds,
        speedup_vs_serial=serial_seconds / pool_seconds,
        identical_to_serial=dict(pool_result.makespans) == dict(serial_result.makespans),
    )
    return table


@pytest.mark.experiment("runtime")
def test_runtime_parallel_weibull_campaign(benchmark, print_table, tmp_path):
    serial_result, serial_seconds = _timed_run(SerialBackend())

    num_workers = os.cpu_count() or 1
    with ProcessPoolBackend(num_workers) as pool:
        pool_result = benchmark(
            lambda: SCENARIO.run(backend=pool, chunk_size=CHUNK_SIZE)
        )

    # The guarantee that makes the parallel runtime safe to use everywhere:
    # same seed => same samples, whatever executes them.
    assert dict(pool_result.makespans) == dict(serial_result.makespans)

    # A warm cache replays the campaign bit-for-bit without simulating, and
    # the replay is much faster than the simulation it replaces.
    cache = ResultCache(tmp_path)
    cold_result, cold_seconds = _timed_run(SerialBackend(), cache=cache)
    warm_result, warm_seconds = _timed_run(SerialBackend(), cache=cache)
    assert dict(warm_result.makespans) == dict(cold_result.makespans)
    assert dict(warm_result.makespans) == dict(serial_result.makespans)
    assert warm_seconds < cold_seconds

    table = ResultTable(
        title="Runtime benchmark summary",
        columns=["mode", "seconds"],
    )
    table.add_row(mode="serial", seconds=serial_seconds)
    table.add_row(mode=f"cold cache (serial)", seconds=cold_seconds)
    table.add_row(mode="warm cache", seconds=warm_seconds)
    print_table(table)

    # The paired campaign itself must still make sense.
    assert serial_result.ranking()[0] == "optimal_dp"


if __name__ == "__main__":  # pragma: no cover - manual timing entry point
    print(measure().to_text())
