"""Runtime -- scalar vs vectorized vs process-pool execution of a Weibull campaign.

Measures the wall-clock effect of the two orthogonal runtime levers
(:mod:`repro.runtime` backends and the :mod:`repro.simulation.vectorized`
batch engine) on the kind of workload they were built for: a paired
simulation campaign under Weibull failures (no closed form exists, so every
data point is earned by replication).  The benchmark

* times the same 600-round campaign on the scalar serial backend, on a
  process pool sized to the machine, and on the vectorized engine (single
  core),
* asserts that scalar results are bit-identical across worker counts and
  that vectorized results are bit-identical across backends (the runtime's
  core guarantee: placement changes wall-clock time, never numbers),
* asserts the two engines agree statistically (same strategy ranking, means
  within a few percent) -- they cannot agree bit-wise on a trace-driven
  campaign because the vectorized engine batches its trace draws,
* demonstrates the *exact* engine contract where it holds: on a Poisson
  (memoryless) Monte-Carlo estimate the scalar and vectorized engines are
  bit-identical for the same seed,
* measures the segment-jumping Poisson kernel against the PR 2 lock-step
  kernel on its target regime (a long checkpoint-all chain with rare
  failures), asserting the two are bit-identical while the jump kernel is
  the faster array program, and
* asserts a warm disk cache replays the campaign without simulating.

Pool speedup is hardware-dependent (approaches Nx on N cores, hovers around
1x on the single-core containers this repo is often benchmarked in); the
vectorized speedup is per-core and lands at an order of magnitude on the
600-round campaign.  Run as a script to print the measured timings::

    PYTHONPATH=src python benchmarks/bench_runtime_parallel.py
    PYTHONPATH=src python benchmarks/bench_runtime_parallel.py --quick --json out.json
"""

from __future__ import annotations

import dataclasses
import os
import tempfile
import time

import numpy as np
import pytest

from repro.core.schedule import Schedule
from repro.experiments.reporting import ResultTable
from repro.runtime import (
    ChainSpec,
    FailureSpec,
    ProcessPoolBackend,
    ResultCache,
    ScenarioSpec,
    SerialBackend,
    VectorizedBackend,
)
from repro.simulation.monte_carlo import MonteCarloEstimator
from repro.simulation.vectorized import (
    PlannedExponentialDelays,
    simulate_poisson_batch,
    simulate_poisson_batch_lockstep,
)

#: The campaign under test: a 30-task chain under platform Weibull failures
#: with infant mortality (shape < 1, as reported by the field studies the
#: paper cites), three strategies per shared trace.
SCENARIO = ScenarioSpec(
    name="bench-weibull-campaign",
    chain=ChainSpec(n=30, work_range=(5.0, 15.0), checkpoint_range=(1.0, 2.0), seed=5),
    failure=FailureSpec(kind="weibull", mtbf=150.0, shape=0.7),
    strategies=("optimal_dp", "checkpoint_all", "checkpoint_none"),
    num_runs=600,
    downtime=0.5,
    seed=11,
)

CHUNK_SIZE = 50


def _best_of(repeats, fn):
    best_seconds = float("inf")
    result = None
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        result = fn()
        best_seconds = min(best_seconds, time.perf_counter() - start)
    return result, best_seconds


def measure(num_runs: int = 600, num_workers: int | None = None,
            repeats: int = 3) -> ResultTable:
    """Time the campaign per engine/backend and cross-check the guarantees.

    The campaign runner is built once (its DP solves are shared setup, not
    simulation) and each row times :meth:`CampaignRunner.run` -- best of
    ``repeats`` so one-off scheduler noise does not pollute the comparison.
    """
    if num_workers is None:
        num_workers = os.cpu_count() or 1
    spec = dataclasses.replace(SCENARIO, num_runs=num_runs)
    runner = spec.runner()
    table = ResultTable(
        title=f"Runtime benchmark: Weibull campaign, {num_runs} paired rounds",
        columns=["mode", "seconds", "speedup_vs_scalar_serial", "check"],
    )

    # Single-core rows first, before any process pool exists: worker start-up
    # and teardown would otherwise steal the core from what is being timed.
    serial_result, serial_seconds = _best_of(
        repeats,
        lambda: runner.run(num_runs, seed=spec.seed, backend=SerialBackend(),
                           chunk_size=CHUNK_SIZE),
    )
    table.add_row(mode="scalar serial", seconds=serial_seconds,
                  speedup_vs_scalar_serial=1.0, check="baseline")

    # Vectorized engine, single core: one chunk = the whole batch.
    runner.run(num_runs, seed=spec.seed, engine="vectorized",
               chunk_size=num_runs)  # warm-up (NumPy dispatch caches)
    vec_result, vec_seconds = _best_of(
        repeats,
        lambda: runner.run(num_runs, seed=spec.seed, engine="vectorized",
                           chunk_size=num_runs),
    )
    # The engines draw their traces differently, so agreement is
    # statistical: per-strategy means within 4 combined standard errors (a
    # fixed-percentage tolerance false-alarms at --quick sample sizes).
    close_means = all(
        abs(vec_result.mean(name) - serial_result.mean(name))
        <= 4.0 * (
            (vec_result.std(name) ** 2 / vec_result.num_runs)
            + (serial_result.std(name) ** 2 / serial_result.num_runs)
        ) ** 0.5 + 1e-12
        for name in serial_result.makespans
    )
    table.add_row(
        mode="vectorized serial",
        seconds=vec_seconds,
        speedup_vs_scalar_serial=serial_seconds / vec_seconds,
        check="statistically equivalent" if close_means else "MISMATCH",
    )

    with ProcessPoolBackend(num_workers) as pool:
        pool_result, pool_seconds = _best_of(
            1,
            lambda: runner.run(num_runs, seed=spec.seed, backend=pool,
                               chunk_size=CHUNK_SIZE),
        )
    table.add_row(
        mode=f"scalar pool({num_workers})",
        seconds=pool_seconds,
        speedup_vs_scalar_serial=serial_seconds / pool_seconds,
        check="bit-identical to serial"
        if dict(pool_result.makespans) == dict(serial_result.makespans)
        else "MISMATCH",
    )

    # Built from a spec (a worker count), so the wrapper owns and closes the pool.
    with VectorizedBackend(2) as vec_pool:
        vec_pool_result, vec_pool_seconds = _best_of(
            1,
            lambda: runner.run(num_runs, seed=spec.seed, backend=vec_pool,
                               chunk_size=max(num_runs // 2, 1)),
        )
    vec_half = runner.run(num_runs, seed=spec.seed, engine="vectorized",
                          chunk_size=max(num_runs // 2, 1))
    table.add_row(
        mode="vectorized pool(2)",
        seconds=vec_pool_seconds,
        speedup_vs_scalar_serial=serial_seconds / vec_pool_seconds,
        check="bit-identical across backends"
        if dict(vec_pool_result.makespans) == dict(vec_half.makespans)
        else "MISMATCH",
    )

    # Warm disk cache: replays the campaign without simulating at all.
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        runner.run(num_runs, seed=spec.seed, engine="vectorized",
                   chunk_size=num_runs, cache=cache)
        warm_result, warm_seconds = _best_of(
            1,
            lambda: runner.run(num_runs, seed=spec.seed, engine="vectorized",
                               chunk_size=num_runs, cache=cache),
        )
    table.add_row(
        mode="warm cache (vectorized)",
        seconds=warm_seconds,
        speedup_vs_scalar_serial=serial_seconds / warm_seconds,
        check="bit-identical replay"
        if dict(warm_result.makespans) == dict(vec_result.makespans)
        else "MISMATCH",
    )

    # Where exact equivalence holds: Poisson (memoryless) Monte-Carlo
    # estimation is bit-identical across engines for the same seed.
    chain = spec.chain.build()
    from repro.baselines.strategies import evaluate_chain_strategies

    schedule = evaluate_chain_strategies(
        chain, spec.downtime, spec.failure.rate_equivalent
    )["optimal_dp"].to_schedule()
    estimator = MonteCarloEstimator(
        schedule, spec.failure.rate_equivalent, spec.downtime
    )
    mc_runs = max(num_runs * 4, 1000)
    scalar_mc, scalar_mc_seconds = _best_of(
        1, lambda: estimator.estimate(mc_runs, seed=7, engine="scalar")
    )
    vec_mc, vec_mc_seconds = _best_of(
        1, lambda: estimator.estimate(mc_runs, seed=7, engine="vectorized")
    )
    table.add_row(
        mode=f"poisson MC scalar ({mc_runs} runs)", seconds=scalar_mc_seconds,
        speedup_vs_scalar_serial=None, check="baseline",
    )
    table.add_row(
        mode=f"poisson MC vectorized ({mc_runs} runs)", seconds=vec_mc_seconds,
        speedup_vs_scalar_serial=scalar_mc_seconds / vec_mc_seconds,
        check="bit-identical to scalar" if vec_mc == scalar_mc else "MISMATCH",
    )

    # Segment jumping on its target regime (the PR 4 tentpole): a long
    # checkpoint-all chain under rare failures, where the lock-step kernel
    # burns one NumPy round per *attempt* while the jump kernel needs a
    # handful of rounds per *failure*.  Both consume the same delay plan, so
    # the comparison is apples-to-apples and must stay bit-identical.
    jump_count = max(num_runs * 2, 250)
    long_chain = ChainSpec(
        n=256, work_range=(5.0, 15.0), checkpoint_range=(1.0, 2.0), seed=7
    ).build()
    long_segments = Schedule.for_chain(long_chain, range(long_chain.n)).segments()
    # MTBF 8000 on a ~2950-long chain: ~0.4 failures per replication, the
    # classic validated-checkpointing regime the jump kernel targets (the
    # auto dispatch delegates denser-failure batches to lock-step, where
    # jumping cannot win).
    jump_rate = 1.0 / 8000.0

    def _poisson_kernel(kernel):
        plan = PlannedExponentialDelays(
            np.random.default_rng(3), 1.0 / jump_rate, jump_count,
            first_rounds=len(long_segments) + 4,
        )
        return kernel(
            long_segments, jump_rate, 1.0, None, jump_count, plan=plan
        )

    lock_kernel, lock_seconds = _best_of(
        repeats, lambda: _poisson_kernel(simulate_poisson_batch_lockstep)
    )
    jump_kernel, jump_seconds = _best_of(
        repeats, lambda: _poisson_kernel(simulate_poisson_batch)
    )
    kernels_identical = all(
        bool(np.array_equal(a, b))
        for a, b in (
            (jump_kernel.makespans, lock_kernel.makespans),
            (jump_kernel.num_failures, lock_kernel.num_failures),
            (jump_kernel.wasted_times, lock_kernel.wasted_times),
            (jump_kernel.recovery_attempts, lock_kernel.recovery_attempts),
        )
    )
    label = f"{jump_count} reps x {len(long_segments)} segs"
    table.add_row(
        mode=f"poisson long-chain lock-step kernel ({label})",
        seconds=lock_seconds, speedup_vs_scalar_serial=None,
        check="PR 2 baseline",
    )
    table.add_row(
        mode=f"poisson long-chain jump kernel ({label})",
        seconds=jump_seconds,
        speedup_vs_scalar_serial=lock_seconds / jump_seconds,
        check="bit-identical to lock-step" if kernels_identical else "MISMATCH",
    )

    # Moderate failures (PR 10 tentpole): ~1.5 failures per replication on a
    # 2048-segment chain.  The pre-fusion veteran loop fell back to per-lane
    # rounds as soon as any lane was recovering, so this regime ran at
    # lock-step speed; the fused round resolves recoveries in a pre-pass and
    # lets every healthy lane jump through one shared threshold gather.  The
    # shape is fixed (independent of --quick) so CI gates the same
    # measurement as a full run, and the kernels must stay bit-identical.
    mod_count = 240
    mod_chain = ChainSpec(
        n=2048, work_range=(5.0, 15.0), checkpoint_range=(1.0, 2.0), seed=7
    ).build()
    mod_segments = Schedule.for_chain(mod_chain, range(mod_chain.n)).segments()
    mod_length = sum(s.work + s.checkpoint_cost for s in mod_segments)
    mod_rate = 1.5 / mod_length

    def _moderate_kernel(kernel):
        plan = PlannedExponentialDelays(
            np.random.default_rng(3), 1.0 / mod_rate, mod_count,
            first_rounds=len(mod_segments) + 4,
        )
        return kernel(
            mod_segments, mod_rate, 1.0, None, mod_count, plan=plan
        )

    # Best-of >= 3 keeps the asserted gate out of scheduler-noise range.
    mod_repeats = max(repeats, 3)
    mod_lock, mod_lock_seconds = _best_of(
        mod_repeats, lambda: _moderate_kernel(simulate_poisson_batch_lockstep)
    )
    mod_jump, mod_jump_seconds = _best_of(
        mod_repeats, lambda: _moderate_kernel(simulate_poisson_batch)
    )
    mod_identical = all(
        bool(np.array_equal(a, b))
        for a, b in (
            (mod_jump.makespans, mod_lock.makespans),
            (mod_jump.num_failures, mod_lock.num_failures),
            (mod_jump.wasted_times, mod_lock.wasted_times),
            (mod_jump.recovery_attempts, mod_lock.recovery_attempts),
        )
    )
    if not mod_identical:
        raise AssertionError(
            "fused moderate-failure kernel diverges from lock-step"
        )
    mod_speedup = mod_lock_seconds / mod_jump_seconds
    if mod_speedup < 2.0:
        raise AssertionError(
            f"fused moderate-failure kernel speedup {mod_speedup:.2f}x is "
            f"below the 2.0x gate"
        )
    mod_label = f"{mod_count} reps x {len(mod_segments)} segs, ~1.5 fails/rep"
    table.add_row(
        mode=f"poisson moderate-failure lock-step kernel ({mod_label})",
        seconds=mod_lock_seconds, speedup_vs_scalar_serial=None,
        check="pre-fusion behaviour of this regime",
    )
    table.add_row(
        mode=f"poisson moderate-failure fused jump kernel ({mod_label})",
        seconds=mod_jump_seconds,
        speedup_vs_scalar_serial=mod_speedup,
        check="bit-identical to lock-step",
    )

    # The same regime end to end: estimate() with the scalar event loop vs
    # the vectorized engine (which auto-selects the jump kernel here).
    long_estimator = MonteCarloEstimator(long_segments, jump_rate, 1.0)
    scalar_long, scalar_long_seconds = _best_of(
        1, lambda: long_estimator.estimate(jump_count, seed=7, engine="scalar")
    )
    vec_long, vec_long_seconds = _best_of(
        1, lambda: long_estimator.estimate(jump_count, seed=7, engine="vectorized")
    )
    table.add_row(
        mode=f"poisson long-chain MC scalar ({jump_count} runs)",
        seconds=scalar_long_seconds, speedup_vs_scalar_serial=None,
        check="baseline",
    )
    table.add_row(
        mode=f"poisson long-chain MC vectorized ({jump_count} runs)",
        seconds=vec_long_seconds,
        speedup_vs_scalar_serial=scalar_long_seconds / vec_long_seconds,
        check="bit-identical to scalar" if vec_long == scalar_long else "MISMATCH",
    )
    return table


@pytest.mark.experiment("runtime")
def test_runtime_parallel_weibull_campaign(benchmark, print_table, tmp_path):
    spec = SCENARIO
    runner = spec.runner()
    serial_result, serial_seconds = _best_of(
        1,
        lambda: runner.run(spec.num_runs, seed=spec.seed, backend=SerialBackend(),
                           chunk_size=CHUNK_SIZE),
    )

    num_workers = os.cpu_count() or 1
    with ProcessPoolBackend(num_workers) as pool:
        pool_result = benchmark(
            lambda: runner.run(spec.num_runs, seed=spec.seed, backend=pool,
                               chunk_size=CHUNK_SIZE)
        )

    # The guarantee that makes the parallel runtime safe to use everywhere:
    # same seed => same samples, whatever executes them.
    assert dict(pool_result.makespans) == dict(serial_result.makespans)

    # The vectorized engine is deterministic for a given (seed, chunk plan),
    # bit-identical across backends, and statistically agrees with scalar.
    vec_a = runner.run(spec.num_runs, seed=spec.seed, engine="vectorized",
                       chunk_size=spec.num_runs)
    with VectorizedBackend(2) as vec_pool:
        vec_b = runner.run(spec.num_runs, seed=spec.seed, backend=vec_pool,
                           chunk_size=spec.num_runs)
    assert dict(vec_a.makespans) == dict(vec_b.makespans)
    assert vec_a.ranking() == serial_result.ranking()

    # A warm cache replays the campaign bit-for-bit without simulating, and
    # the replay is much faster than the simulation it replaces.
    cache = ResultCache(tmp_path)
    cold_result, cold_seconds = _best_of(
        1,
        lambda: runner.run(spec.num_runs, seed=spec.seed, backend=SerialBackend(),
                           chunk_size=CHUNK_SIZE, cache=cache),
    )
    warm_result, warm_seconds = _best_of(
        1,
        lambda: runner.run(spec.num_runs, seed=spec.seed, backend=SerialBackend(),
                           chunk_size=CHUNK_SIZE, cache=cache),
    )
    assert dict(warm_result.makespans) == dict(cold_result.makespans)
    assert dict(warm_result.makespans) == dict(serial_result.makespans)
    assert warm_seconds < cold_seconds

    table = ResultTable(
        title="Runtime benchmark summary",
        columns=["mode", "seconds"],
    )
    table.add_row(mode="serial", seconds=serial_seconds)
    table.add_row(mode="cold cache (serial)", seconds=cold_seconds)
    table.add_row(mode="warm cache", seconds=warm_seconds)
    print_table(table)

    # The paired campaign itself must still make sense.
    assert serial_result.ranking()[0] == "optimal_dp"


#: Parameter sets for script mode (the CI smoke job runs ``--quick``).
FULL_PARAMS = {"num_runs": 600, "repeats": 5}
QUICK_PARAMS = {"num_runs": 120, "repeats": 1}

if __name__ == "__main__":  # pragma: no cover - manual timing entry point
    from harness import run_cli

    raise SystemExit(run_cli(
        "bench_runtime_parallel", measure,
        quick_params=QUICK_PARAMS, full_params=FULL_PARAMS,
    ))
