"""E4 -- The 3-PARTITION reduction of Proposition 2 behaves exactly as proved.

YES 3-PARTITION instances map to scheduling instances whose optimal expected
makespan equals the bound K (achieved by n balanced, checkpointed groups);
NO instances map to instances where even the optimal schedule exceeds K.
"""

import pytest

from repro.experiments.registry import experiment_e4_reduction


@pytest.mark.experiment("E4")
def test_e4_reduction(benchmark, print_table):
    table = benchmark(experiment_e4_reduction, num_yes=3, num_no=2, seed=3)
    print_table(table)
    yes_rows = [row for row in table.rows if row["kind"] == "YES"]
    no_rows = [row for row in table.rows if row["kind"] == "NO"]
    assert yes_rows and no_rows
    assert all(row["meets_bound"] for row in yes_rows)
    assert all(row["recovered_partition"] for row in yes_rows)
    assert all(not row["meets_bound"] for row in no_rows)


#: Parameter sets for script mode (the CI smoke job runs ``--quick``).
FULL_PARAMS = {"seed": 3}
QUICK_PARAMS = {"num_yes": 2, "num_no": 1, "seed": 3}

if __name__ == "__main__":  # pragma: no cover - exercised by the CI bench-smoke job
    from harness import run_cli

    raise SystemExit(run_cli(
        "bench_e4_reduction", experiment_e4_reduction,
        quick_params=QUICK_PARAMS, full_params=FULL_PARAMS,
    ))
