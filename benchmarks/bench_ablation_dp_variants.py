"""Ablation: iterative bottom-up DP vs the paper's memoised recursion.

DESIGN.md calls out the decision to ship two implementations of Algorithm 1 —
a literal recursive transcription of the paper's pseudo-code and an iterative
bottom-up DP with prefix sums.  This ablation checks that the choice of the
iterative variant as the production entry point is justified: the two always
agree on the optimal value, and the iterative variant is at least as fast and
has no recursion-depth limit.
"""

import pytest

from repro.core.chain_dp import dp_makespan_recursive, optimal_chain_checkpoints
from repro.workflows.generators import uniform_random_chain

CHAIN = uniform_random_chain(300, seed=200)
DOWNTIME, RATE = 0.5, 0.01


@pytest.mark.experiment("ablation-dp")
def test_ablation_iterative_dp(benchmark):
    result = benchmark(optimal_chain_checkpoints, CHAIN, DOWNTIME, RATE)
    best, _ = dp_makespan_recursive(CHAIN, DOWNTIME, RATE)
    assert result.expected_makespan == pytest.approx(best, rel=1e-12)


@pytest.mark.experiment("ablation-dp")
def test_ablation_recursive_dp(benchmark):
    best, _ = benchmark(dp_makespan_recursive, CHAIN, DOWNTIME, RATE)
    reference = optimal_chain_checkpoints(CHAIN, DOWNTIME, RATE).expected_makespan
    assert best == pytest.approx(reference, rel=1e-12)
