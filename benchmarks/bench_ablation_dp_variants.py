"""Ablation: iterative bottom-up DP vs the paper's memoised recursion.

DESIGN.md calls out the decision to ship two implementations of Algorithm 1 —
a literal recursive transcription of the paper's pseudo-code and an iterative
bottom-up DP with prefix sums.  This ablation checks that the choice of the
iterative variant as the production entry point is justified: the two always
agree on the optimal value, and the iterative variant is at least as fast and
has no recursion-depth limit.
"""

import pytest

from repro.core.chain_dp import dp_makespan_recursive, optimal_chain_checkpoints
from repro.workflows.generators import uniform_random_chain

CHAIN = uniform_random_chain(300, seed=200)
DOWNTIME, RATE = 0.5, 0.01


@pytest.mark.experiment("ablation-dp")
def test_ablation_iterative_dp(benchmark):
    result = benchmark(optimal_chain_checkpoints, CHAIN, DOWNTIME, RATE)
    best, _ = dp_makespan_recursive(CHAIN, DOWNTIME, RATE)
    assert result.expected_makespan == pytest.approx(best, rel=1e-12)


@pytest.mark.experiment("ablation-dp")
def test_ablation_recursive_dp(benchmark):
    best, _ = benchmark(dp_makespan_recursive, CHAIN, DOWNTIME, RATE)
    reference = optimal_chain_checkpoints(CHAIN, DOWNTIME, RATE).expected_makespan
    assert best == pytest.approx(reference, rel=1e-12)


def run_dp_comparison(n: int = 300, seed: int = 200, downtime: float = DOWNTIME,
                      rate: float = RATE):
    """Time both DP variants on one chain and check they agree."""
    import time as _time

    from repro.experiments.reporting import ResultTable

    chain = uniform_random_chain(n, seed=seed)
    table = ResultTable(
        title=f"Chain DP variants, n={n}",
        columns=["variant", "seconds", "expected_makespan"],
    )
    start = _time.perf_counter()
    iterative = optimal_chain_checkpoints(chain, downtime, rate)
    table.add_row(variant="iterative", seconds=_time.perf_counter() - start,
                  expected_makespan=iterative.expected_makespan)
    start = _time.perf_counter()
    recursive, _ = dp_makespan_recursive(chain, downtime, rate)
    table.add_row(variant="recursive", seconds=_time.perf_counter() - start,
                  expected_makespan=recursive)
    if abs(iterative.expected_makespan - recursive) > 1e-9 * recursive:
        raise AssertionError("DP variants disagree")
    return table


#: Parameter sets for script mode (the CI smoke job runs ``--quick``).
FULL_PARAMS = {"n": 300, "seed": 200}
QUICK_PARAMS = {"n": 120, "seed": 200}

if __name__ == "__main__":  # pragma: no cover - exercised by the CI bench-smoke job
    from harness import run_cli

    raise SystemExit(run_cli(
        "bench_ablation_dp_variants", run_dp_comparison,
        quick_params=QUICK_PARAMS, full_params=FULL_PARAMS,
    ))
