"""E3 -- The linear-chain DP (Algorithm 1) is optimal and scales quadratically.

Two claims of Proposition 3 are regenerated:

* exactness: on chains small enough for exhaustive enumeration, the DP's
  expected makespan equals the brute-force optimum;
* complexity: the measured runtime grows roughly quadratically with the chain
  length (the benchmark also times a mid-size DP solve directly).
"""

import pytest

from repro.core.chain_dp import optimal_chain_checkpoints
from repro.experiments.registry import experiment_e3_chain_dp
from repro.workflows.generators import uniform_random_chain


@pytest.mark.experiment("E3")
def test_e3_chain_dp_exactness(benchmark, print_table):
    table = benchmark(
        experiment_e3_chain_dp,
        brute_force_sizes=(4, 6, 8, 10),
        scaling_sizes=(100, 200, 400),
        seed=2,
    )
    print_table(table)
    exact_rows = [row for row in table.rows if row["mode"] == "exactness"]
    assert exact_rows and all(row["match"] for row in exact_rows)
    scaling_rows = [row for row in table.rows if row["mode"] == "scaling"]
    # Quadratic scaling: quadrupling n from 100 to 400 should cost clearly
    # more than 4x but far less than 64x (which cubic growth would approach).
    t100 = next(r["dp_seconds"] for r in scaling_rows if r["n"] == 100)
    t400 = next(r["dp_seconds"] for r in scaling_rows if r["n"] == 400)
    assert t400 / max(t100, 1e-9) < 64.0


@pytest.mark.experiment("E3")
def test_e3_chain_dp_solve_time(benchmark):
    chain = uniform_random_chain(400, seed=3)
    result = benchmark(optimal_chain_checkpoints, chain, 0.5, 0.01)
    assert result.expected_makespan > chain.total_work()


#: Parameter sets for script mode (the CI smoke job runs ``--quick``).
FULL_PARAMS = {"seed": 2}
QUICK_PARAMS = {"brute_force_sizes": (4, 6), "scaling_sizes": (100, 200), "seed": 2}

if __name__ == "__main__":  # pragma: no cover - exercised by the CI bench-smoke job
    from harness import run_cli

    raise SystemExit(run_cli(
        "bench_e3_chain_dp", experiment_e3_chain_dp,
        quick_params=QUICK_PARAMS, full_params=FULL_PARAMS,
    ))
