"""E8 -- Non-Exponential failures: simulation-evaluated placement heuristics.

The paper's third extension (Section 6) notes that for Weibull or log-normal
failures no closed form exists and heuristics must be evaluated by simulation.
This benchmark regenerates that study on a synthetic chain: the placement from
the Exponential DP (using the equivalent MTBF), the work-maximisation
placement of Bouguerra-Trystram-Wagner, checkpoint-everywhere and
never-checkpoint are all simulated under each failure law.

Shape expected: under every law with an MTBF comparable to the total work, the
informed placements (exp-DP and work-max) beat never-checkpoint; and no
strategy beats the informed ones by a large margin.
"""

import pytest

from repro.experiments.registry import experiment_e8_general_failures


@pytest.mark.experiment("E8")
def test_e8_general_failures(benchmark, print_table):
    table = benchmark(
        experiment_e8_general_failures, n=15, num_runs=200, seed=6, platform_mtbf=150.0
    )
    print_table(table)
    laws = {row["law"] for row in table.rows}
    assert {"exponential", "weibull(k=0.7)", "weibull(k=1.5)", "lognormal(s=1.0)"} <= laws

    def mean(law, strategy):
        return next(
            row["mean_makespan"] for row in table.rows
            if row["law"] == law and row["strategy"] == strategy
        )

    for law in laws:
        assert mean(law, "exp_dp") < mean(law, "none")
        assert mean(law, "work_max") < mean(law, "none") * 1.1


#: Parameter sets for script mode (the CI smoke job runs ``--quick``).
FULL_PARAMS = {"n": 20, "num_runs": 400, "seed": 6}
QUICK_PARAMS = {"n": 8, "num_runs": 100, "seed": 6}

if __name__ == "__main__":  # pragma: no cover - exercised by the CI bench-smoke job
    from harness import run_cli

    raise SystemExit(run_cli(
        "bench_e8_general_failures", experiment_e8_general_failures,
        quick_params=QUICK_PARAMS, full_params=FULL_PARAMS,
    ))
