"""E8 -- Non-Exponential failures: simulation-evaluated placement heuristics.

The paper's third extension (Section 6) notes that for Weibull or log-normal
failures no closed form exists and heuristics must be evaluated by simulation.
This benchmark regenerates that study on a synthetic chain: the placement from
the Exponential DP (using the equivalent MTBF), the work-maximisation
placement of Bouguerra-Trystram-Wagner, checkpoint-everywhere and
never-checkpoint are all simulated under each failure law.

Shape expected: under every law with an MTBF comparable to the total work, the
informed placements (exp-DP and work-max) beat never-checkpoint; and no
strategy beats the informed ones by a large margin.
"""

import pytest

from repro.experiments.registry import experiment_e8_general_failures


@pytest.mark.experiment("E8")
def test_e8_general_failures(benchmark, print_table):
    table = benchmark(
        experiment_e8_general_failures, n=15, num_runs=200, seed=6, platform_mtbf=150.0
    )
    print_table(table)
    laws = {row["law"] for row in table.rows}
    assert {"exponential", "weibull(k=0.7)", "weibull(k=1.5)", "lognormal(s=1.0)"} <= laws

    def mean(law, strategy):
        return next(
            row["mean_makespan"] for row in table.rows
            if row["law"] == law and row["strategy"] == strategy
        )

    for law in laws:
        assert mean(law, "exp_dp") < mean(law, "none")
        assert mean(law, "work_max") < mean(law, "none") * 1.1
