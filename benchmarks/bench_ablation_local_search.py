"""Ablation: does the local-search step of the independent-task heuristic pay off?

DESIGN.md describes the independent-task heuristic as LPT balanced grouping
followed by local search (single-task moves and pairwise swaps).  This
ablation quantifies both halves:

* quality: on instances small enough for the exhaustive optimum, LPT alone is
  already close, and local search closes most of the remaining gap;
* cost: the local-search pass is the expensive part, so its benefit must be
  visible to justify the default.
"""

import numpy as np
import pytest

from repro.core.independent import (
    exhaustive_independent_schedule,
    schedule_independent_tasks,
)

RNG = np.random.default_rng(201)
WORKS = list(RNG.uniform(1.0, 10.0, size=9))
CHECKPOINT, DOWNTIME, RATE = 1.0, 0.0, 0.08
OPTIMUM = exhaustive_independent_schedule(WORKS, CHECKPOINT, CHECKPOINT, DOWNTIME, RATE)


@pytest.mark.experiment("ablation-local-search")
def test_ablation_lpt_only(benchmark):
    result = benchmark(
        schedule_independent_tasks,
        WORKS, CHECKPOINT, CHECKPOINT, DOWNTIME, RATE,
        local_search_iterations=0,
    )
    # LPT alone is within 5% of the optimum on this instance family.
    assert result.expected_makespan <= OPTIMUM.expected_makespan * 1.05


@pytest.mark.experiment("ablation-local-search")
def test_ablation_lpt_plus_local_search(benchmark):
    result = benchmark(
        schedule_independent_tasks,
        WORKS, CHECKPOINT, CHECKPOINT, DOWNTIME, RATE,
        local_search_iterations=200,
    )
    lpt_only = schedule_independent_tasks(
        WORKS, CHECKPOINT, CHECKPOINT, DOWNTIME, RATE, local_search_iterations=0
    )
    # Local search can only improve on the LPT seed, and lands within 2% of optimal.
    assert result.expected_makespan <= lpt_only.expected_makespan + 1e-9
    assert result.expected_makespan <= OPTIMUM.expected_makespan * 1.02


def run_local_search_comparison(n: int = 9, local_search_iterations: int = 200,
                                seed: int = 201):
    """Compare LPT-only grouping against LPT plus local search."""
    from repro.experiments.reporting import ResultTable

    rng = np.random.default_rng(seed)
    works = list(rng.uniform(1.0, 10.0, size=n))
    table = ResultTable(
        title=f"Independent-task local search ablation, n={n}",
        columns=["variant", "expected_makespan"],
    )
    lpt = schedule_independent_tasks(
        works, CHECKPOINT, CHECKPOINT, DOWNTIME, RATE, local_search_iterations=0
    )
    improved = schedule_independent_tasks(
        works, CHECKPOINT, CHECKPOINT, DOWNTIME, RATE,
        local_search_iterations=local_search_iterations,
    )
    table.add_row(variant="lpt_only", expected_makespan=lpt.expected_makespan)
    table.add_row(variant=f"lpt+search({local_search_iterations})",
                  expected_makespan=improved.expected_makespan)
    if improved.expected_makespan > lpt.expected_makespan + 1e-9:
        raise AssertionError("local search made the schedule worse")
    return table


#: Parameter sets for script mode (the CI smoke job runs ``--quick``).
FULL_PARAMS = {"n": 9, "local_search_iterations": 200, "seed": 201}
QUICK_PARAMS = {"n": 7, "local_search_iterations": 50, "seed": 201}

if __name__ == "__main__":  # pragma: no cover - exercised by the CI bench-smoke job
    from harness import run_cli

    raise SystemExit(run_cli(
        "bench_ablation_local_search", run_local_search_comparison,
        quick_params=QUICK_PARAMS, full_params=FULL_PARAMS,
    ))
