"""Ablation: does the local-search step of the independent-task heuristic pay off?

DESIGN.md describes the independent-task heuristic as LPT balanced grouping
followed by local search (single-task moves and pairwise swaps).  This
ablation quantifies both halves:

* quality: on instances small enough for the exhaustive optimum, LPT alone is
  already close, and local search closes most of the remaining gap;
* cost: the local-search pass is the expensive part, so its benefit must be
  visible to justify the default.
"""

import numpy as np
import pytest

from repro.core.independent import (
    exhaustive_independent_schedule,
    schedule_independent_tasks,
)

RNG = np.random.default_rng(201)
WORKS = list(RNG.uniform(1.0, 10.0, size=9))
CHECKPOINT, DOWNTIME, RATE = 1.0, 0.0, 0.08
OPTIMUM = exhaustive_independent_schedule(WORKS, CHECKPOINT, CHECKPOINT, DOWNTIME, RATE)


@pytest.mark.experiment("ablation-local-search")
def test_ablation_lpt_only(benchmark):
    result = benchmark(
        schedule_independent_tasks,
        WORKS, CHECKPOINT, CHECKPOINT, DOWNTIME, RATE,
        local_search_iterations=0,
    )
    # LPT alone is within 5% of the optimum on this instance family.
    assert result.expected_makespan <= OPTIMUM.expected_makespan * 1.05


@pytest.mark.experiment("ablation-local-search")
def test_ablation_lpt_plus_local_search(benchmark):
    result = benchmark(
        schedule_independent_tasks,
        WORKS, CHECKPOINT, CHECKPOINT, DOWNTIME, RATE,
        local_search_iterations=200,
    )
    lpt_only = schedule_independent_tasks(
        WORKS, CHECKPOINT, CHECKPOINT, DOWNTIME, RATE, local_search_iterations=0
    )
    # Local search can only improve on the LPT seed, and lands within 2% of optimal.
    assert result.expected_makespan <= lpt_only.expected_makespan + 1e-9
    assert result.expected_makespan <= OPTIMUM.expected_makespan * 1.02
