"""E10 -- Frontier-dependent checkpoint costs on DAG linearisations (Section 6, ext. 1).

Regenerates the comparison between the paper's base cost model (a checkpoint
costs the C of the task just executed) and the generalised frontier model (a
checkpoint must save every live task executed since the previous checkpoint).

Shape expected:
* on DAGs with wide fan-out (fork-join, Montage), the frontier model makes
  mid-fan-out checkpoints more expensive, so the expected makespan under it is
  at least as large as under the base model for the same instance;
* the heuristic scheduler stays close to the exhaustive optimum on the small
  fork-join instance where enumeration is feasible.
"""

import pytest

from repro.core.dag_scheduling import place_checkpoints_on_order
from repro.experiments.registry import experiment_e10_dag_frontier
from repro.models.checkpoint import FrontierCheckpointCost
from repro.workflows.generators import fork_join, montage_like


def run_e10_with_kernel_check(*, seed: int = 7):
    """E10 plus an in-bench identity gate for the precomputed frontier kernel.

    The experiment itself exercises the frontier model through the heuristic
    scheduler; this wrapper additionally pins the optimisation under it --
    the vectorized placement's precomputed liveness intervals
    (``_FrontierCostTables``) must reproduce the per-cell reference DP
    bit-for-bit on the same wide-fan-out DAGs the experiment uses.
    """
    table = experiment_e10_dag_frontier(seed=seed)
    for workflow in (
        fork_join(6, branch_work=4.0, checkpoint_cost=0.5, seed=seed),
        montage_like(4, checkpoint_cost=0.5),
    ):
        order = workflow.topological_order()
        model = FrontierCheckpointCost(workflow)
        for rate in (0.01, 0.1):
            reference = place_checkpoints_on_order(
                workflow, order, 0.2, rate,
                checkpoint_model=model, method="reference",
            )
            vectorized = place_checkpoints_on_order(
                workflow, order, 0.2, rate,
                checkpoint_model=model, method="vectorized",
            )
            if reference != vectorized:
                raise AssertionError(
                    "frontier placement: vectorized kernel diverges from the "
                    f"reference at rate={rate}"
                )
    return table


@pytest.mark.experiment("E10")
def test_e10_dag_frontier(benchmark, print_table):
    table = benchmark(experiment_e10_dag_frontier, seed=7)
    print_table(table)

    def value(dag, rate, cost_model):
        return next(
            row["E_makespan"] for row in table.rows
            if row["dag"] == dag and row["rate"] == rate and row["cost_model"] == cost_model
        )

    for dag in ("fork_join(6)", "montage(4)"):
        for rate in (0.01, 0.1):
            assert value(dag, rate, "frontier_sum") >= value(dag, rate, "per_task") - 1e-9

    # Where the exhaustive optimum is available, the heuristic is within 5%.
    for row in table.rows:
        if row.get("exact_optimal") is not None:
            assert row["E_makespan"] <= row["exact_optimal"] * 1.05 + 1e-9


#: Parameter sets for script mode (the CI smoke job runs ``--quick``).
FULL_PARAMS = {"seed": 7}
QUICK_PARAMS = {"seed": 7}

if __name__ == "__main__":  # pragma: no cover - exercised by the CI bench-smoke job
    from harness import run_cli

    raise SystemExit(run_cli(
        "bench_e10_dag_frontier", run_e10_with_kernel_check,
        quick_params=QUICK_PARAMS, full_params=FULL_PARAMS,
    ))
