"""Analytic solver kernels -- vectorized DP vs the scalar reference.

PR 5 turned the chain-checkpointing DP (Proposition 3), its budget-constrained
variant and the DAG linearize-then-place DP into NumPy array programs (one
closed-form transition vector per DP row, the whole budget axis per row for
the budget DP).  This benchmark times each solver both ways on the same
instances and asserts, in-bench, that the results are *exactly* equal --
same expected makespans, same checkpoint positions -- so a speedup row can
never hide a numerics regression.

Rows report ``reference_seconds``, ``vectorized_seconds``, the speedup and
the exact-equality flag; the CI bench-smoke job archives the ``--quick``
JSON like every other ``bench_*.py``.

The hot-kernel residue rows extend the table with their own gates, asserted
in-bench so CI fails if an optimisation regresses below its claim:

* ``dag_frontier`` -- checkpoint placement under the frontier cost model,
  where the vectorized path precomputes the order's liveness intervals once
  (``_FrontierCostTables``) instead of calling the Python model per DP cell;
  gated at >= 2x (measured two orders of magnitude).
* ``budget_dp_streaming`` -- a *memory* row: ``tracemalloc`` peak of the
  full-table budget DP vs the sqrt-budget streaming kernel, gated at >= 10x
  reduction with bit-identical schedules.  Timing is deliberately not
  measured under tracemalloc (tracing inflates wall-clock several-fold).
* ``local_search_cache`` -- the incremental local search with per-group cost
  columns cached across rounds vs the same kernel re-evaluating every group
  each round, gated at >= 2x with bit-identical partitions.
"""

import time
import tracemalloc

import numpy as np

from repro.core.chain_dp import (
    optimal_chain_checkpoints,
    optimal_chain_checkpoints_budget,
)
from repro.core.dag_scheduling import place_checkpoints_on_order
from repro.core.independent import (
    _local_search_vectorized,
    balanced_grouping,
    schedule_independent_tasks,
)
from repro.experiments.reporting import ResultTable
from repro.models.checkpoint import FrontierCheckpointCost
from repro.workflows.generators import uniform_random_chain

DOWNTIME = 0.5
RATE = 0.01


def _best_of(repeats, fn):
    best_seconds = float("inf")
    result = None
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        result = fn()
        best_seconds = min(best_seconds, time.perf_counter() - start)
    return result, best_seconds


def _peak_memory(fn):
    """Result and tracemalloc peak (bytes) of one call, traced in isolation."""
    tracemalloc.start()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def run_analytic_solver_benchmarks(
    *,
    chain_n: int = 500,
    budget_n: int = 200,
    budget_cap: int = 50,
    dag_n: int = 300,
    independent_n: int = 50,
    frontier_n: int = 160,
    stream_n: int = 400,
    stream_cap: int = 400,
    cache_n: int = 400,
    cache_groups: int = 64,
    cache_iterations: int = 300,
    seed: int = 3,
) -> ResultTable:
    """Time reference vs vectorized for every analytic solver, checking equality."""
    table = ResultTable(
        title="Analytic solver kernels: scalar reference vs vectorized NumPy DP",
        columns=[
            "solver", "n", "reference_seconds", "vectorized_seconds",
            "speedup", "exact_match",
        ],
    )

    def add_row(solver, n, build_ref, build_vec, same, *, min_speedup=None,
                repeats=1):
        ref_result, ref_seconds = _best_of(repeats, build_ref)
        vec_result, vec_seconds = _best_of(repeats, build_vec)
        match = same(ref_result, vec_result)
        if not match:
            raise AssertionError(
                f"{solver}: vectorized result diverges from the scalar reference"
            )
        speedup = ref_seconds / max(vec_seconds, 1e-12)
        if min_speedup is not None and speedup < min_speedup:
            raise AssertionError(
                f"{solver}: speedup {speedup:.2f}x is below the "
                f"{min_speedup:.1f}x gate"
            )
        table.add_row(
            solver=solver,
            n=n,
            reference_seconds=ref_seconds,
            vectorized_seconds=vec_seconds,
            speedup=speedup,
            exact_match=match,
        )

    def placements_equal(a, b):
        return (
            a.expected_makespan == b.expected_makespan
            and a.checkpoint_after == b.checkpoint_after
        )

    chain = uniform_random_chain(chain_n, seed=seed)
    add_row(
        "chain_dp", chain_n,
        lambda: optimal_chain_checkpoints(chain, DOWNTIME, RATE, method="reference"),
        lambda: optimal_chain_checkpoints(chain, DOWNTIME, RATE, method="vectorized"),
        placements_equal,
    )

    budget_chain = uniform_random_chain(budget_n, seed=seed + 1)
    add_row(
        "budget_dp", budget_n,
        lambda: optimal_chain_checkpoints_budget(
            budget_chain, DOWNTIME, RATE, budget_cap, method="reference"
        ),
        lambda: optimal_chain_checkpoints_budget(
            budget_chain, DOWNTIME, RATE, budget_cap, method="vectorized"
        ),
        placements_equal,
    )

    dag = uniform_random_chain(dag_n, seed=seed + 2).to_workflow()
    order = dag.topological_order()
    add_row(
        "dag_placement", dag_n,
        lambda: place_checkpoints_on_order(
            dag, order, DOWNTIME, RATE, method="reference"
        ),
        lambda: place_checkpoints_on_order(
            dag, order, DOWNTIME, RATE, method="vectorized"
        ),
        lambda a, b: a == b,
    )

    works = list(np.random.default_rng(seed + 3).uniform(1.0, 10.0, size=independent_n))
    add_row(
        "independent_local_search", independent_n,
        lambda: schedule_independent_tasks(
            works, 1.0, 1.0, 0.0, 0.05, method="reference"
        ),
        lambda: schedule_independent_tasks(
            works, 1.0, 1.0, 0.0, 0.05, method="vectorized"
        ),
        # The local searches may settle in different (equal-quality) local
        # optima when candidate improvements sit below one ulp, so this row
        # checks value agreement rather than identical partitions.
        lambda a, b: abs(a.expected_makespan - b.expected_makespan)
        <= 1e-9 * a.expected_makespan,
    )

    # Frontier cost model: the reference path calls the Python model per DP
    # cell (O(n^2) calls, each walking the liveness window); the vectorized
    # path precomputes the order's liveness intervals once and fills each
    # row's checkpoint-cost vector with a masked NumPy pass.  The measured
    # gap is two to three orders of magnitude; the gate keeps generous noise
    # headroom while still catching a fallback to per-cell calls.
    frontier_dag = uniform_random_chain(frontier_n, seed=seed + 4).to_workflow()
    frontier_order = frontier_dag.topological_order()
    frontier_model = FrontierCheckpointCost(frontier_dag)
    add_row(
        "dag_frontier", frontier_n,
        lambda: place_checkpoints_on_order(
            frontier_dag, frontier_order, DOWNTIME, RATE,
            checkpoint_model=frontier_model, method="reference",
        ),
        lambda: place_checkpoints_on_order(
            frontier_dag, frontier_order, DOWNTIME, RATE,
            checkpoint_model=frontier_model, method="vectorized",
        ),
        lambda a, b: a == b,
        min_speedup=2.0,
    )

    # Streaming budget DP: a *memory* row.  Peak tracemalloc footprint of the
    # full-table kernel vs the sqrt-budget streaming kernel on the same
    # budget-saturated instance (cap == n is the worst case for the full
    # table).  Wall-clock is intentionally not recorded here: tracemalloc
    # inflates allocation-heavy code several-fold, so mixing the two would
    # poison the timing columns.  The schedules must stay bit-identical.
    stream_chain = uniform_random_chain(stream_n, seed=seed + 5)
    full_result, full_peak = _peak_memory(
        lambda: optimal_chain_checkpoints_budget(
            stream_chain, DOWNTIME, RATE, stream_cap, method="vectorized"
        )
    )
    stream_result, stream_peak = _peak_memory(
        lambda: optimal_chain_checkpoints_budget(
            stream_chain, DOWNTIME, RATE, stream_cap, method="streaming"
        )
    )
    stream_match = (
        full_result.expected_makespan == stream_result.expected_makespan
        and full_result.checkpoint_after == stream_result.checkpoint_after
    )
    if not stream_match:
        raise AssertionError(
            "budget_dp_streaming: streamed schedule diverges from the full table"
        )
    memory_reduction = full_peak / max(stream_peak, 1)
    if memory_reduction < 10.0:
        raise AssertionError(
            f"budget_dp_streaming: peak-memory reduction {memory_reduction:.1f}x "
            f"is below the 10.0x gate"
        )
    table.add_row(
        solver="budget_dp_streaming", n=stream_n,
        full_table_peak_kb=full_peak / 1024.0,
        streaming_peak_kb=stream_peak / 1024.0,
        memory_reduction=memory_reduction,
        exact_match=stream_match,
    )

    # Incremental local search: the same vectorized kernel with the per-group
    # cost-column cache on vs off.  With the cache, an accepted move dirties
    # exactly the two groups it touched; without it every round rebuilds all
    # m column blocks.  Per-block arithmetic is elementwise, so the two paths
    # are bit-identical -- partitions and values must match exactly.
    cache_works = list(
        np.random.default_rng(seed + 6).uniform(1.0, 10.0, size=cache_n)
    )
    cache_start = [
        list(g) for g in balanced_grouping(cache_works, cache_groups)
    ]
    add_row(
        "local_search_cache", cache_n,
        lambda: _local_search_vectorized(
            [list(g) for g in cache_start], cache_works, 1.0, 1.0, 0.5, 0.02,
            None, cache_iterations, use_cache=False,
        ),
        lambda: _local_search_vectorized(
            [list(g) for g in cache_start], cache_works, 1.0, 1.0, 0.5, 0.02,
            None, cache_iterations, use_cache=True,
        ),
        lambda a, b: a == b,
        min_speedup=2.0,
        repeats=3,
    )
    return table


def test_analytic_solver_speedups(benchmark, print_table):
    table = benchmark(
        run_analytic_solver_benchmarks,
        chain_n=300, budget_n=120, budget_cap=30, dag_n=150, independent_n=40,
        frontier_n=70, stream_n=260, stream_cap=260,
        cache_n=320, cache_groups=48, cache_iterations=250,
    )
    print_table(table)
    assert all(row["exact_match"] for row in table.rows)
    chain_row = next(row for row in table.rows if row["solver"] == "chain_dp")
    assert chain_row["speedup"] > 1.0
    stream_row = next(
        row for row in table.rows if row["solver"] == "budget_dp_streaming"
    )
    assert stream_row["memory_reduction"] >= 10.0


#: Parameter sets for script mode (the CI smoke job runs ``--quick``).  The
#: quick set keeps the 500-task chain: the acceptance claim is >= 5x on a
#: 500-task chain DP in a 1-core container.  The hot-kernel rows shrink in
#: quick mode but stay above their gates (frontier >= 2x, streaming memory
#: >= 10x, cache >= 2x) with measured headroom.
FULL_PARAMS = {
    "chain_n": 500, "budget_n": 200, "budget_cap": 50,
    "dag_n": 300, "independent_n": 50,
    "frontier_n": 160, "stream_n": 400, "stream_cap": 400,
    "cache_n": 400, "cache_groups": 64, "cache_iterations": 300,
    "seed": 3,
}
QUICK_PARAMS = {
    "chain_n": 500, "budget_n": 120, "budget_cap": 30,
    "dag_n": 150, "independent_n": 32,
    "frontier_n": 70, "stream_n": 260, "stream_cap": 260,
    "cache_n": 320, "cache_groups": 48, "cache_iterations": 250,
    "seed": 3,
}

if __name__ == "__main__":  # pragma: no cover - exercised by the CI bench-smoke job
    from harness import run_cli

    raise SystemExit(run_cli(
        "bench_analytic_solvers", run_analytic_solver_benchmarks,
        quick_params=QUICK_PARAMS, full_params=FULL_PARAMS,
    ))
