"""Analytic solver kernels -- vectorized DP vs the scalar reference.

PR 5 turned the chain-checkpointing DP (Proposition 3), its budget-constrained
variant and the DAG linearize-then-place DP into NumPy array programs (one
closed-form transition vector per DP row, the whole budget axis per row for
the budget DP).  This benchmark times each solver both ways on the same
instances and asserts, in-bench, that the results are *exactly* equal --
same expected makespans, same checkpoint positions -- so a speedup row can
never hide a numerics regression.

Rows report ``reference_seconds``, ``vectorized_seconds``, the speedup and
the exact-equality flag; the CI bench-smoke job archives the ``--quick``
JSON like every other ``bench_*.py``.
"""

import time

import numpy as np

from repro.core.chain_dp import (
    optimal_chain_checkpoints,
    optimal_chain_checkpoints_budget,
)
from repro.core.dag_scheduling import place_checkpoints_on_order
from repro.core.independent import schedule_independent_tasks
from repro.experiments.reporting import ResultTable
from repro.workflows.generators import uniform_random_chain

DOWNTIME = 0.5
RATE = 0.01


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run_analytic_solver_benchmarks(
    *,
    chain_n: int = 500,
    budget_n: int = 200,
    budget_cap: int = 50,
    dag_n: int = 300,
    independent_n: int = 50,
    seed: int = 3,
) -> ResultTable:
    """Time reference vs vectorized for every analytic solver, checking equality."""
    table = ResultTable(
        title="Analytic solver kernels: scalar reference vs vectorized NumPy DP",
        columns=[
            "solver", "n", "reference_seconds", "vectorized_seconds",
            "speedup", "exact_match",
        ],
    )

    def add_row(solver, n, build_ref, build_vec, same):
        ref_result, ref_seconds = _timed(build_ref)
        vec_result, vec_seconds = _timed(build_vec)
        match = same(ref_result, vec_result)
        if not match:
            raise AssertionError(
                f"{solver}: vectorized result diverges from the scalar reference"
            )
        table.add_row(
            solver=solver,
            n=n,
            reference_seconds=ref_seconds,
            vectorized_seconds=vec_seconds,
            speedup=ref_seconds / max(vec_seconds, 1e-12),
            exact_match=match,
        )

    def placements_equal(a, b):
        return (
            a.expected_makespan == b.expected_makespan
            and a.checkpoint_after == b.checkpoint_after
        )

    chain = uniform_random_chain(chain_n, seed=seed)
    add_row(
        "chain_dp", chain_n,
        lambda: optimal_chain_checkpoints(chain, DOWNTIME, RATE, method="reference"),
        lambda: optimal_chain_checkpoints(chain, DOWNTIME, RATE, method="vectorized"),
        placements_equal,
    )

    budget_chain = uniform_random_chain(budget_n, seed=seed + 1)
    add_row(
        "budget_dp", budget_n,
        lambda: optimal_chain_checkpoints_budget(
            budget_chain, DOWNTIME, RATE, budget_cap, method="reference"
        ),
        lambda: optimal_chain_checkpoints_budget(
            budget_chain, DOWNTIME, RATE, budget_cap, method="vectorized"
        ),
        placements_equal,
    )

    dag = uniform_random_chain(dag_n, seed=seed + 2).to_workflow()
    order = dag.topological_order()
    add_row(
        "dag_placement", dag_n,
        lambda: place_checkpoints_on_order(
            dag, order, DOWNTIME, RATE, method="reference"
        ),
        lambda: place_checkpoints_on_order(
            dag, order, DOWNTIME, RATE, method="vectorized"
        ),
        lambda a, b: a == b,
    )

    works = list(np.random.default_rng(seed + 3).uniform(1.0, 10.0, size=independent_n))
    add_row(
        "independent_local_search", independent_n,
        lambda: schedule_independent_tasks(
            works, 1.0, 1.0, 0.0, 0.05, method="reference"
        ),
        lambda: schedule_independent_tasks(
            works, 1.0, 1.0, 0.0, 0.05, method="vectorized"
        ),
        # The local searches may settle in different (equal-quality) local
        # optima when candidate improvements sit below one ulp, so this row
        # checks value agreement rather than identical partitions.
        lambda a, b: abs(a.expected_makespan - b.expected_makespan)
        <= 1e-9 * a.expected_makespan,
    )
    return table


def test_analytic_solver_speedups(benchmark, print_table):
    table = benchmark(
        run_analytic_solver_benchmarks,
        chain_n=300, budget_n=120, budget_cap=30, dag_n=150, independent_n=40,
    )
    print_table(table)
    assert all(row["exact_match"] for row in table.rows)
    chain_row = next(row for row in table.rows if row["solver"] == "chain_dp")
    assert chain_row["speedup"] > 1.0


#: Parameter sets for script mode (the CI smoke job runs ``--quick``).  The
#: quick set keeps the 500-task chain: the acceptance claim is >= 5x on a
#: 500-task chain DP in a 1-core container.
FULL_PARAMS = {
    "chain_n": 500, "budget_n": 200, "budget_cap": 50,
    "dag_n": 300, "independent_n": 50, "seed": 3,
}
QUICK_PARAMS = {
    "chain_n": 500, "budget_n": 120, "budget_cap": 30,
    "dag_n": 150, "independent_n": 32, "seed": 3,
}

if __name__ == "__main__":  # pragma: no cover - exercised by the CI bench-smoke job
    from harness import run_cli

    raise SystemExit(run_cli(
        "bench_analytic_solvers", run_analytic_solver_benchmarks,
        quick_params=QUICK_PARAMS, full_params=FULL_PARAMS,
    ))
