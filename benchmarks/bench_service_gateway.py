"""Serving-throughput benchmark: asyncio gateway vs the threaded server.

The gateway exists for one reason: status polls ("is my job done yet?")
dominate service traffic, and the threaded front end pays a thread context
switch, a sqlite read and a ``json.dumps`` for every one of them.  The
asyncio gateway answers the same ``GET /v1/jobs/{id}`` from pre-serialized
snapshot bytes on a single event loop.  This benchmark drives both servers
with identical pipelined keep-alive connections and measures requests per
second on exactly that hot path.

Two assertions ride along:

* **bit-identity** -- the campaign result fetched through each server equals
  a direct :meth:`ScenarioSpec.run` sample-for-sample (the gateway is a
  faster door to the same computation, never a different one);
* **speedup floor** -- in full mode the gateway must clear 5x the threaded
  server's throughput (quick/CI mode reports the ratio without gating on
  machine noise).
"""

import json
import socket
import time

from repro.runtime.scenario import ChainSpec, FailureSpec, ScenarioSpec


def _bench_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="bench-gateway",
        chain=ChainSpec(n=5, seed=2),
        failure=FailureSpec(kind="weibull", mtbf=40.0, shape=0.7),
        strategies=("optimal_dp",),
        num_runs=120,
        downtime=0.2,
        seed=3,
        engine="vectorized",
    )


def _read_one_response(sock: socket.socket, buf: bytes):
    """Read exactly one HTTP response; returns ``(response, leftover)``."""
    while b"\r\n\r\n" not in buf:
        buf += sock.recv(65536)
    head, _, rest = buf.partition(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    while len(rest) < length:
        rest += sock.recv(65536)
    return head + b"\r\n\r\n" + rest[:length], rest[length:]


def _measure_get(host: str, port: int, path: str, *, total: int, depth: int):
    """Requests/second for pipelined keep-alive GETs; also returns one body.

    ``depth`` requests are written per batch so client-side syscall overhead
    is amortised and server-side processing dominates the measurement.  Both
    servers answer a given (unchanging) job with fixed-size responses, so a
    batch is complete when ``depth * size`` bytes arrived.
    """
    request = f"GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n".encode("latin-1")
    with socket.create_connection((host, port), timeout=30) as sock:
        sock.settimeout(30)
        sock.sendall(request)  # warmup; calibrates the response size
        first, buf = _read_one_response(sock, b"")
        size = len(first)
        done = 0
        start = time.perf_counter()
        while done < total:
            batch = min(depth, total - done)
            sock.sendall(request * batch)
            expected = batch * size
            parts = [buf]
            received = len(buf)
            while received < expected:
                chunk = sock.recv(1 << 20)
                if not chunk:
                    raise AssertionError("server closed mid-benchmark")
                parts.append(chunk)
                received += len(chunk)
            buf = b"".join(parts)[expected:]
            done += batch
        seconds = time.perf_counter() - start
    return total / seconds, first


def _submitted_job(server_url: str, spec: ScenarioSpec) -> str:
    from repro.service.client import ServiceClient

    client = ServiceClient(server_url)
    job = client.submit_campaign(spec)
    done = client.wait(job["id"], timeout=120)
    if done["state"] != "done":
        raise AssertionError(f"benchmark job ended {done['state']}: {done['error']}")
    return job["id"]


def _assert_bit_identical(response: bytes, direct) -> None:
    served = json.loads(response.split(b"\r\n\r\n", 1)[1])["job"]["result"]
    expected = {name: list(samples) for name, samples in direct.makespans.items()}
    if served["makespans"] != expected:
        raise AssertionError("served campaign result differs from a direct run")


def run_gateway_throughput(
    total: int = 4000, depth: int = 50, min_speedup: float = 5.0
):
    """Measure both servers on the status-poll hot path; assert the contract."""
    from repro.experiments.reporting import ResultTable
    from repro.service.gateway import GatewayServer
    from repro.service.jobs import JobStore
    from repro.service.queue import JobScheduler
    from repro.service.server import ScenarioServer

    spec = _bench_spec()
    direct = spec.run()

    gw_store = JobStore()
    gateway = GatewayServer(JobScheduler(gw_store), port=0)
    gateway.start()
    th_store = JobStore()
    threaded = ScenarioServer(JobScheduler(th_store), port=0)
    threaded.start()
    try:
        gw_job = _submitted_job(gateway.url, spec)
        th_job = _submitted_job(threaded.url, spec)
        gw_rps, gw_response = _measure_get(
            gateway.host, gateway.port, f"/v1/jobs/{gw_job}",
            total=total, depth=depth,
        )
        th_rps, th_response = _measure_get(
            threaded.host, threaded.port, f"/v1/jobs/{th_job}",
            total=total, depth=depth,
        )
        # Fidelity first: speed means nothing if the bytes are wrong.
        _assert_bit_identical(gw_response, direct)
        _assert_bit_identical(th_response, direct)
    finally:
        gateway.shutdown()
        threaded.shutdown()
        gw_store.close()
        th_store.close()

    speedup = gw_rps / th_rps
    table = ResultTable(
        title=f"GET /v1/jobs/{{id}} throughput, {total} pipelined requests",
        columns=["server", "req_per_s", "speedup", "bit_identical"],
    )
    table.add_row(server="threaded", req_per_s=round(th_rps), speedup=1.0,
                  bit_identical=True)
    table.add_row(server="asyncio-gateway", req_per_s=round(gw_rps),
                  speedup=round(speedup, 2), bit_identical=True)
    if min_speedup and speedup < min_speedup:
        raise AssertionError(
            f"gateway is only {speedup:.1f}x the threaded server "
            f"(required: {min_speedup:g}x)"
        )
    return table


#: Parameter sets for script mode (the CI smoke job runs ``--quick``).
#: Quick mode reports the speedup without gating: shared CI runners have
#: noisy neighbours, and the hard >=5x contract belongs to the full run.
FULL_PARAMS = {"total": 4000, "depth": 50, "min_speedup": 5.0}
QUICK_PARAMS = {"total": 800, "depth": 40, "min_speedup": 0.0}

if __name__ == "__main__":  # pragma: no cover - exercised by the CI bench-smoke job
    from harness import run_cli

    raise SystemExit(run_cli(
        "bench_service_gateway", run_gateway_throughput,
        quick_params=QUICK_PARAMS, full_params=FULL_PARAMS,
    ))
