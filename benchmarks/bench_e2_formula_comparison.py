"""E2 -- Exact periodic optimum vs Young/Daly approximations and the inexact formula.

Regenerates the comparison the paper makes in Section 3 / related work:

* the Young and Daly periods are near-optimal in the standard regime
  (checkpoint cost well below the MTBF) but measurably sub-optimal when
  failures become frequent;
* the Bouguerra-style formula (recovery charged before every attempt) strictly
  over-estimates the exact Proposition 1 value whenever R > 0.
"""

import pytest

from repro.experiments.registry import experiment_e2_formula_comparison


@pytest.mark.experiment("E2")
def test_e2_formula_comparison(benchmark, print_table):
    table = benchmark(experiment_e2_formula_comparison)
    print_table(table)
    assert len(table) >= 5
    for row in table.rows:
        # The approximate periods can never beat the exact optimum.
        assert row["young_overhead_pct"] >= -1e-6
        assert row["daly_overhead_pct"] >= -1e-6
        # The inexact formula over-estimates (R > 0 in this experiment).
        assert row["bouguerra_bias_pct"] > 0.0
    # In the rare-failure regime (first row) Daly is within 1% of optimal.
    assert table.rows[0]["daly_overhead_pct"] < 1.0


#: Parameter sets for script mode (the CI smoke job runs ``--quick``).
FULL_PARAMS = {}
QUICK_PARAMS = {}

if __name__ == "__main__":  # pragma: no cover - exercised by the CI bench-smoke job
    from harness import run_cli

    raise SystemExit(run_cli(
        "bench_e2_formula_comparison", experiment_e2_formula_comparison,
        quick_params=QUICK_PARAMS, full_params=FULL_PARAMS,
    ))
