"""Script-mode entry point shared by the benchmark files.

Each ``benchmarks/bench_*.py`` is primarily a pytest-benchmark module.  Run
as a *script*, it times its workload directly through this harness, which
gives every benchmark a uniform CLI::

    PYTHONPATH=src python benchmarks/bench_e3_chain_dp.py                # full budget
    PYTHONPATH=src python benchmarks/bench_e3_chain_dp.py --quick       # CI smoke mode
    PYTHONPATH=src python benchmarks/bench_e3_chain_dp.py --quick --json out.json

``--quick`` swaps in a reduced, fixed-seed parameter set so the whole suite
finishes in seconds -- that is what the CI ``bench-smoke`` job runs on every
push, archiving the ``--json`` outputs as a workflow artifact so regressions
leave a measurable trail.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import subprocess
import time
from typing import Any, Callable, Dict, Mapping, Optional, Sequence


def _git_sha() -> Optional[str]:
    """Current commit hash, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _numpy_version() -> Optional[str]:
    """NumPy version string, or None when the workload is stdlib-only."""
    try:
        import numpy
    except ImportError:
        return None
    return numpy.__version__


def provenance() -> Dict[str, Any]:
    """Environment stamp attached to every JSON artifact and history record.

    A timing is only comparable to another timing from the same code and
    platform, so each record carries the commit, interpreter, NumPy build and
    core count it was measured under -- enough for
    ``scripts/plot_perf_history.py`` and ``scripts/check_bench_regression.py``
    to group like with like instead of averaging across machines.
    """
    return {
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "numpy": _numpy_version(),
        "cpu_count": os.cpu_count(),
    }


def append_history(path: str, record: Mapping[str, Any]) -> None:
    """Append one perf record to the JSONL history file at ``path``.

    The file is the bench suite's perf memory across runs: one flat JSON
    object per line, so ``scripts/check_bench_regression.py`` (and plain
    ``jq``) can compare the latest run against earlier ones.  Parent
    directories are created; concurrent appenders rely on POSIX O_APPEND
    line atomicity for these short lines.
    """
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def _json_safe(value: Any) -> Any:
    """Reduce a result payload to strict-JSON-compatible values."""
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Mapping):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return repr(value)


def run_cli(
    name: str,
    runner: Callable[..., Any],
    *,
    quick_params: Mapping[str, Any],
    full_params: Mapping[str, Any],
    argv: Optional[Sequence[str]] = None,
) -> int:
    """Time ``runner(**params)`` once per repeat and report the best run.

    ``runner`` is the benchmark workload; it may return a
    :class:`~repro.experiments.reporting.ResultTable` (printed, rows included
    in the JSON payload), any other object (repr-ed), or ``None``.
    """
    parser = argparse.ArgumentParser(
        prog=name,
        description=(runner.__doc__ or "").strip().splitlines()[0]
        if runner.__doc__
        else f"benchmark {name}",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced replication budget with fixed seeds (CI smoke mode)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the timing and result summary to PATH as JSON",
    )
    parser.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="run the workload N times and report the fastest (default 1)",
    )
    parser.add_argument(
        "--history", metavar="PATH", default=None,
        help="append a one-line perf record (bench, mode, seconds, git sha, "
             "timestamp) to the JSONL history file at PATH",
    )
    args = parser.parse_args(argv)
    params = dict(quick_params if args.quick else full_params)

    best_seconds = math.inf
    result: Any = None
    for _ in range(max(args.repeat, 1)):
        start = time.perf_counter()
        result = runner(**params)
        best_seconds = min(best_seconds, time.perf_counter() - start)

    if hasattr(result, "to_text"):
        print(result.to_text())
    elif result is not None:
        print(result)
    mode = "quick" if args.quick else "full"
    print(f"[{name}] mode={mode} best of {max(args.repeat, 1)}: {best_seconds:.4f} s")

    if args.json:
        payload: Dict[str, Any] = {
            "benchmark": name,
            "mode": mode,
            "seconds": best_seconds,
            "repeat": max(args.repeat, 1),
            "params": _json_safe(params),
            **provenance(),
        }
        rows = getattr(result, "rows", None)
        if rows is not None:
            payload["rows"] = _json_safe(rows)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"[{name}] wrote {args.json}")

    if args.history:
        append_history(args.history, {
            "bench": name,
            "mode": mode,
            "metric": "seconds",
            "value": best_seconds,
            "repeat": max(args.repeat, 1),
            "ts": time.time(),
            **provenance(),
        })
        print(f"[{name}] appended perf record to {args.history}")
    return 0
