"""E7 -- Workload and checkpoint scaling with the platform size (Section 3).

Regenerates the series "expected makespan of the best periodic policy versus
the number of processors p", for the three W(p) workload models crossed with
the two C(p) checkpoint-cost models the paper lists.

Shape expected:
* with the perfectly-parallel workload and a proportional checkpoint cost,
  more processors keep helping across the whole sweep;
* with a constant checkpoint cost (storage-bound I/O) or an Amdahl workload,
  the benefit of extra processors saturates or reverses as the platform
  failure rate p * lambda_proc grows.
"""

import pytest

from repro.experiments.registry import experiment_e7_scaling_models


@pytest.mark.experiment("E7")
def test_e7_scaling_models(benchmark, print_table):
    table = benchmark(experiment_e7_scaling_models)
    print_table(table)

    def series(workload, checkpoint):
        rows = [
            row for row in table.rows
            if row["workload_model"] == workload and row["checkpoint_model"] == checkpoint
        ]
        return sorted(rows, key=lambda r: r["p"])

    perfect_prop = series("perfect", "proportional")
    assert perfect_prop[0]["E_best_periodic"] > perfect_prop[-1]["E_best_periodic"]

    # Amdahl with a constant checkpoint cost: the largest platform is NOT the
    # fastest once the sequential fraction and the failure rate dominate.
    amdahl_const = series("amdahl(g=0.01)", "constant")
    best = min(row["E_best_periodic"] for row in amdahl_const)
    assert amdahl_const[-1]["E_best_periodic"] > best * 0.999
    assert amdahl_const[-1]["E_best_periodic"] >= amdahl_const[-2]["E_best_periodic"] * 0.5

    # The number of chunks (checkpoints) grows with the platform failure rate.
    assert perfect_prop[-1]["chunks"] >= perfect_prop[0]["chunks"]


#: Parameter sets for script mode (the CI smoke job runs ``--quick``).
FULL_PARAMS = {}
QUICK_PARAMS = {}

if __name__ == "__main__":  # pragma: no cover - exercised by the CI bench-smoke job
    from harness import run_cli

    raise SystemExit(run_cli(
        "bench_e7_scaling_models", experiment_e7_scaling_models,
        quick_params=QUICK_PARAMS, full_params=FULL_PARAMS,
    ))
