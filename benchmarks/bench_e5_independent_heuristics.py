"""E5 -- Independent-task heuristics vs the exhaustive optimum.

The scheduling problem for independent tasks is strongly NP-complete
(Proposition 2), so the library ships a balanced-grouping + local-search
heuristic.  This benchmark regenerates its quality table: within a couple of
percent of the exhaustive optimum on small instances, and never worse than the
trivial "one group" / "all singletons" placements on larger ones.
"""

import pytest

from repro.experiments.registry import experiment_e5_independent_heuristics


@pytest.mark.experiment("E5")
def test_e5_independent_heuristics(benchmark, print_table):
    table = benchmark(
        experiment_e5_independent_heuristics,
        exact_sizes=(5, 7, 9),
        heuristic_sizes=(30,),
        seed=4,
    )
    print_table(table)
    for row in table.rows:
        if row["ratio_to_optimal"] is not None:
            assert row["ratio_to_optimal"] <= 1.03
        assert row["E_heuristic"] <= row["E_one_group"] + 1e-9
        assert row["E_heuristic"] <= row["E_singletons"] + 1e-9


#: Parameter sets for script mode (the CI smoke job runs ``--quick``).
FULL_PARAMS = {"seed": 4}
QUICK_PARAMS = {"exact_sizes": (5,), "heuristic_sizes": (30,), "seed": 4}

if __name__ == "__main__":  # pragma: no cover - exercised by the CI bench-smoke job
    from harness import run_cli

    raise SystemExit(run_cli(
        "bench_e5_independent_heuristics", experiment_e5_independent_heuristics,
        quick_params=QUICK_PARAMS, full_params=FULL_PARAMS,
    ))
