"""E1 -- Proposition 1 closed form vs Monte-Carlo simulation.

Regenerates the validation table for the paper's central formula::

    E[T(W, C, D, R, lambda)] = e^{lambda R} (1/lambda + D) (e^{lambda (W+C)} - 1)

For every scenario in the grid the Monte-Carlo estimate must agree with the
closed form within a few percent (and within its own 95% confidence interval
for almost every row).
"""

import pytest

from repro.experiments.registry import experiment_e1_prop1_validation


@pytest.mark.experiment("E1")
def test_e1_prop1_validation(benchmark, print_table):
    table = benchmark(experiment_e1_prop1_validation, num_runs=4000, seed=1)
    print_table(table)
    assert len(table) >= 6
    # Every scenario must be reproduced to within 5% by simulation.
    assert all(row["rel_error"] < 0.05 for row in table.rows)
    # And the overwhelming majority must fall inside the 95% CI.
    within = sum(1 for row in table.rows if row["within_ci95"])
    assert within >= len(table) - 1


#: Parameter sets for script mode (the CI smoke job runs ``--quick``).
FULL_PARAMS = {"num_runs": 4000, "seed": 1}
QUICK_PARAMS = {"num_runs": 400, "seed": 1}

if __name__ == "__main__":  # pragma: no cover - exercised by the CI bench-smoke job
    from harness import run_cli

    raise SystemExit(run_cli(
        "bench_e1_prop1_validation", experiment_e1_prop1_validation,
        quick_params=QUICK_PARAMS, full_params=FULL_PARAMS,
    ))
