"""E6 -- Value of the optimal DP placement on chains, across failure rates.

Regenerates the strategy-comparison series: the expected makespan of
checkpoint-after-every-task, never-checkpoint, every-k and Young/Daly-period
placements relative to the DP optimum, as the platform failure rate sweeps
from "failures are negligible" to "MTBF comparable to a single task".

Shape expected from the paper's analysis:
* the DP dominates every strategy at every rate (ratio >= 1);
* never-checkpoint is near-optimal for tiny rates but blows up for large ones;
* checkpoint-everything is near-optimal for large rates but wasteful for tiny
  ones; the crossover sits in between.
"""

import pytest

from repro.experiments.registry import experiment_e6_chain_strategies


@pytest.mark.experiment("E6")
def test_e6_chain_strategies(benchmark, print_table):
    table = benchmark(experiment_e6_chain_strategies, n=50, seed=5)
    print_table(table)
    assert len(table) >= 6
    for row in table.rows:
        for key in ("ratio_all", "ratio_none", "ratio_every_2", "ratio_every_5",
                    "ratio_daly", "ratio_young"):
            if row[key] is not None:
                assert row[key] >= 1.0 - 1e-9
    lowest_rate = table.rows[0]
    highest_rate = table.rows[-1]
    # Rare failures: skipping checkpoints is the right call, checkpointing
    # everywhere pays every checkpoint for nothing.
    assert lowest_rate["ratio_none"] < lowest_rate["ratio_all"]
    # Frequent failures: the ranking flips.
    assert highest_rate["ratio_all"] < highest_rate["ratio_none"]
    # The optimal number of checkpoints grows with the failure rate.
    assert highest_rate["optimal_checkpoints"] > lowest_rate["optimal_checkpoints"]


#: Parameter sets for script mode (the CI smoke job runs ``--quick``).
FULL_PARAMS = {"n": 50, "seed": 5}
QUICK_PARAMS = {"n": 12, "seed": 5}

if __name__ == "__main__":  # pragma: no cover - exercised by the CI bench-smoke job
    from harness import run_cli

    raise SystemExit(run_cli(
        "bench_e6_chain_strategies", experiment_e6_chain_strategies,
        quick_params=QUICK_PARAMS, full_params=FULL_PARAMS,
    ))
