"""E9 -- Moldable tasks: best per-task processor allocation under failures.

Regenerates the moldable-task study of the second extension (Section 6): for
each workload scaling model and each per-processor failure rate, the processor
count minimising the Proposition 1 expectation is compared against simply
using the whole platform.

Shape expected:
* for negligible failure rates, using (nearly) the whole platform is best;
* as the failure rate grows, the optimal allocation shrinks and the gain over
  the full-platform allocation becomes strictly positive, especially for the
  Amdahl workload (whose sequential fraction makes extra processors pure risk).
"""

import pytest

from repro.experiments.registry import experiment_e9_moldable


@pytest.mark.experiment("E9")
def test_e9_moldable(benchmark, print_table):
    table = benchmark(experiment_e9_moldable, max_processors=1024)
    print_table(table)
    for row in table.rows:
        # The optimal allocation can never lose to the full platform.
        assert row["gain_pct"] >= -1e-6
        assert 1 <= row["best_p"] <= 1024

    def series(workload):
        rows = [r for r in table.rows if r["workload_model"] == workload]
        return sorted(rows, key=lambda r: r["lambda_proc"])

    amdahl = series("amdahl(g=0.001)")
    # The best allocation shrinks as the failure rate grows.
    assert amdahl[-1]["best_p"] <= amdahl[0]["best_p"]
    # And at the highest rate the full platform is strictly worse.
    assert amdahl[-1]["gain_pct"] > 0.0


#: Parameter sets for script mode (the CI smoke job runs ``--quick``).
FULL_PARAMS = {"max_processors": 1024}
QUICK_PARAMS = {"max_processors": 256}

if __name__ == "__main__":  # pragma: no cover - exercised by the CI bench-smoke job
    from harness import run_cli

    raise SystemExit(run_cli(
        "bench_e9_moldable", experiment_e9_moldable,
        quick_params=QUICK_PARAMS, full_params=FULL_PARAMS,
    ))
