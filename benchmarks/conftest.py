"""Shared configuration for the benchmark suite.

Each benchmark module wraps one experiment of the reproduction (E1-E10, see
DESIGN.md section 7 and EXPERIMENTS.md).  The benchmarked callable both runs
the experiment and asserts its headline claim, so ``pytest benchmarks/
--benchmark-only`` doubles as a slow validation pass; the produced tables are
printed when running with ``-s``.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    # Benchmarks are defined as pytest-benchmark fixtures; nothing special to do,
    # but keep a marker so plain `pytest benchmarks/` (without --benchmark-only)
    # still works if pytest-benchmark is absent.
    config.addinivalue_line("markers", "experiment(id): maps a benchmark to an experiment id")


@pytest.fixture
def print_table(request):
    """Return a helper that prints a ResultTable under -s and stores it on the node."""

    def _print(table):
        request.node.experiment_table = table
        capmanager = request.config.pluginmanager.getplugin("capturemanager")
        if capmanager is not None and request.config.getoption("capture") == "no":
            print()
            print(table.to_text())
        return table

    return _print
